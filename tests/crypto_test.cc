/**
 * @file
 * Tests for the AES-128 cipher and the counter-mode engine: FIPS-197
 * known-answer vectors plus the properties the crash-consistency story
 * rests on — decryption succeeds if and only if the counter matches
 * (paper equations 1-4).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/random.hh"
#include "crypto/aes128.hh"
#include "crypto/ctr_engine.hh"

namespace cnvm::crypto
{
namespace
{

// --- FIPS-197 vectors ---------------------------------------------------

TEST(Aes128, Fips197AppendixC)
{
    std::uint8_t key[16], pt[16], ct[16];
    for (int i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        pt[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    Aes128 aes(key);
    aes.encryptBlock(pt, ct);
    const std::uint8_t expect[16] = {
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
        0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
    EXPECT_EQ(std::memcmp(ct, expect, 16), 0);
}

TEST(Aes128, Fips197AppendixB)
{
    const std::uint8_t key[16] = {
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
        0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const std::uint8_t pt[16] = {
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
        0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
    const std::uint8_t expect[16] = {
        0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
        0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
    std::uint8_t ct[16];
    Aes128 aes(key);
    aes.encryptBlock(pt, ct);
    EXPECT_EQ(std::memcmp(ct, expect, 16), 0);
}

TEST(Aes128, InPlaceEncryption)
{
    std::uint8_t key[16] = {};
    std::uint8_t buf[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                            9, 10, 11, 12, 13, 14, 15, 16};
    std::uint8_t separate[16];
    Aes128 aes(key);
    aes.encryptBlock(buf, separate);
    aes.encryptBlock(buf, buf); // aliased in/out
    EXPECT_EQ(std::memcmp(buf, separate, 16), 0);
}

TEST(Aes128, BackendsAgree)
{
    // encryptBlock may dispatch to AES-NI; whatever backend is active
    // must be bit-identical to the portable byte-oriented cipher, for
    // single blocks and for the four-block pad shape.
    Random rng(0xae5);
    for (int round = 0; round < 64; ++round) {
        std::uint8_t key[16], in[64], fast[64], portable[64];
        for (auto &b : key)
            b = static_cast<std::uint8_t>(rng.next());
        for (auto &b : in)
            b = static_cast<std::uint8_t>(rng.next());
        Aes128 aes(key);
        aes.encryptBlock(in, fast);
        aes.encryptBlockPortable(in, portable);
        EXPECT_EQ(std::memcmp(fast, portable, 16), 0);
        aes.encryptBlocks4(in, fast);
        for (int b = 0; b < 4; ++b)
            aes.encryptBlockPortable(in + 16 * b, portable + 16 * b);
        EXPECT_EQ(std::memcmp(fast, portable, 64), 0);
    }
}

TEST(Aes128, Blocks4AllowsAliasedBuffers)
{
    std::uint8_t key[16] = {0x42};
    std::uint8_t buf[64], separate[64];
    for (int i = 0; i < 64; ++i)
        buf[i] = static_cast<std::uint8_t>(i * 3);
    Aes128 aes(key);
    aes.encryptBlocks4(buf, separate);
    aes.encryptBlocks4(buf, buf); // aliased in/out
    EXPECT_EQ(std::memcmp(buf, separate, 64), 0);
}

TEST(Aes128, SetKeyChangesOutput)
{
    std::uint8_t k1[16] = {}, k2[16] = {};
    k2[0] = 1;
    const std::uint8_t pt[16] = {};
    std::uint8_t c1[16], c2[16];
    Aes128 aes(k1);
    aes.encryptBlock(pt, c1);
    aes.setKey(k2);
    aes.encryptBlock(pt, c2);
    EXPECT_NE(std::memcmp(c1, c2, 16), 0);
}

TEST(Aes128, DeterministicAcrossInstances)
{
    std::uint8_t key[16] = {9, 8, 7, 6, 5, 4, 3, 2,
                            1, 0, 1, 2, 3, 4, 5, 6};
    const std::uint8_t pt[16] = {0xde, 0xad, 0xbe, 0xef};
    std::uint8_t c1[16], c2[16];
    Aes128(key).encryptBlock(pt, c1);
    Aes128(key).encryptBlock(pt, c2);
    EXPECT_EQ(std::memcmp(c1, c2, 16), 0);
}

// --- Counter-mode engine -------------------------------------------------

LineData
patternLine(std::uint8_t seed)
{
    LineData line;
    for (unsigned i = 0; i < lineBytes; ++i)
        line[i] = static_cast<std::uint8_t>(seed + i * 7);
    return line;
}

TEST(CtrEngine, RoundTrip)
{
    CtrEngine eng;
    LineData plain = patternLine(3);
    LineData cipher = eng.encrypt(0x1000, 5, plain);
    EXPECT_NE(cipher, plain);
    EXPECT_EQ(eng.decrypt(0x1000, 5, cipher), plain);
}

TEST(CtrEngine, Equation3SymmetricXor)
{
    // decrypt is encrypt: both XOR the same pad.
    CtrEngine eng;
    LineData plain = patternLine(11);
    EXPECT_EQ(eng.encrypt(0x2000, 9, plain),
              eng.decrypt(0x2000, 9, plain));
}

TEST(CtrEngine, StaleCounterFailsToDecrypt)
{
    // Equation 4: the Figure-3/4 inconsistency.
    CtrEngine eng;
    LineData plain = patternLine(1);
    LineData cipher = eng.encrypt(0x3000, 14, plain);
    EXPECT_NE(eng.decrypt(0x3000, 10, cipher), plain);
    EXPECT_NE(eng.decrypt(0x3000, 15, cipher), plain);
    EXPECT_EQ(eng.decrypt(0x3000, 14, cipher), plain);
}

TEST(CtrEngine, AddressIsPartOfTheTweak)
{
    CtrEngine eng;
    LineData plain = patternLine(2);
    LineData c1 = eng.encrypt(0x1000, 7, plain);
    LineData c2 = eng.encrypt(0x1040, 7, plain);
    EXPECT_NE(c1, c2);
    // Decrypting at the wrong address fails.
    EXPECT_NE(eng.decrypt(0x1040, 7, c1), plain);
}

TEST(CtrEngine, PadsAreUniquePerBlockWithinLine)
{
    // The four 16 B AES blocks of one line must use distinct pads,
    // otherwise equal plaintext blocks would leak equality.
    CtrEngine eng;
    LineData pad = eng.makePad(0x4000, 3);
    for (int i = 0; i < 4; ++i) {
        for (int j = i + 1; j < 4; ++j) {
            EXPECT_NE(std::memcmp(&pad[i * 16], &pad[j * 16], 16), 0)
                << "blocks " << i << " and " << j;
        }
    }
}

TEST(CtrEngine, KeyedDifferently)
{
    std::uint8_t k1[16] = {1};
    std::uint8_t k2[16] = {2};
    CtrEngine e1(k1), e2(k2);
    LineData plain = patternLine(5);
    EXPECT_NE(e1.encrypt(0x5000, 1, plain), e2.encrypt(0x5000, 1, plain));
    // Cross-decryption fails.
    EXPECT_NE(e2.decrypt(0x5000, 1, e1.encrypt(0x5000, 1, plain)), plain);
}

TEST(CtrEngine, ZeroCounterIsValid)
{
    CtrEngine eng;
    LineData plain{};
    LineData cipher = eng.encrypt(0x0, 0, plain);
    EXPECT_EQ(eng.decrypt(0x0, 0, cipher), plain);
    // All-zero plaintext at counter 0 is the never-written cell
    // convention: its ciphertext is exactly the pad.
    EXPECT_EQ(cipher, eng.makePad(0x0, 0));
}

// Property sweep: round-trips hold and wrong counters fail over many
// random (address, counter, payload) combinations.
class CtrEngineProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CtrEngineProperty, RandomizedRoundTrips)
{
    Random rng(GetParam());
    CtrEngine eng;
    for (int i = 0; i < 50; ++i) {
        Addr addr = lineAlign(rng.next() & 0x1ffffffff);
        std::uint64_t counter = rng.next();
        LineData plain;
        for (auto &byte : plain)
            byte = static_cast<std::uint8_t>(rng.next());

        LineData cipher = eng.encrypt(addr, counter, plain);
        ASSERT_EQ(eng.decrypt(addr, counter, cipher), plain);

        std::uint64_t wrong = counter + 1 + rng.below(1000);
        ASSERT_NE(eng.decrypt(addr, wrong, cipher), plain);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CtrEngineProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CtrEngine, PadDistributionLooksRandom)
{
    // Weak statistical check: pad bytes across many counters should
    // not be constant or obviously structured.
    CtrEngine eng;
    std::set<std::uint8_t> seen;
    for (std::uint64_t c = 0; c < 64; ++c) {
        LineData pad = eng.makePad(0x8000, c);
        seen.insert(pad[0]);
    }
    EXPECT_GT(seen.size(), 32u);
}

} // anonymous namespace
} // namespace cnvm::crypto
