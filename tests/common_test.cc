/**
 * @file
 * Unit tests for the common utilities: integer math, hashing, the
 * deterministic RNG, logging counters, and address helpers.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.hh"
#include "common/intmath.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace cnvm
{
namespace
{

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
    EXPECT_TRUE(isPowerOf2(1ull << 63));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ull), 63u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(100, 7), 15u);
}

TEST(IntMath, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(64, 64), 64u);
    EXPECT_EQ(roundDown(127, 64), 64u);
}

TEST(Types, LineAlign)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_TRUE(isLineAligned(0));
    EXPECT_TRUE(isLineAligned(128));
    EXPECT_FALSE(isLineAligned(129));
}

TEST(Types, NsToTicks)
{
    EXPECT_EQ(nsToTicks(1), 1000u);
    EXPECT_EQ(nsToTicks(7.5), 7500u);
    EXPECT_EQ(nsToTicks(0.25), 250u);
    EXPECT_EQ(nsToTicks(300), 300000u);
}

TEST(Types, LineConstants)
{
    EXPECT_EQ(lineBytes, 64u);
    EXPECT_EQ(counterBytes, 8u);
    EXPECT_EQ(countersPerLine, 8u);
}

TEST(Hash, Fnv1aKnownValues)
{
    // FNV-1a of the empty string is the offset basis.
    EXPECT_EQ(fnv1a(nullptr, 0), fnvOffsetBasis);
    // "a" (0x61): one round.
    std::uint64_t expect = (fnvOffsetBasis ^ 0x61) * fnvPrime;
    EXPECT_EQ(fnv1a("a", 1), expect);
}

TEST(Hash, Fnv1aOrderSensitive)
{
    EXPECT_NE(fnv1a("ab", 2), fnv1a("ba", 2));
}

TEST(Hash, Fnv1aChained)
{
    std::uint64_t one_shot = fnv1a("abcd", 4);
    std::uint64_t chained = fnv1a("cd", 2, fnv1a("ab", 2));
    EXPECT_EQ(one_shot, chained);
}

TEST(Hash, Fnv1aU64MatchesBytes)
{
    std::uint64_t v = 0x1122334455667788ull;
    EXPECT_EQ(fnv1aU64(v), fnv1a(&v, sizeof(v)));
}

TEST(Random, Deterministic)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Random, ZeroSeedWorks)
{
    Random r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(Random, BelowOneIsAlwaysZero)
{
    Random r(9);
    for (int i = 0; i < 50; ++i)
        ASSERT_EQ(r.below(1), 0u);
}

TEST(Random, RangeInclusive)
{
    Random r(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = r.range(5, 8);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, RoughlyUniform)
{
    Random r(13);
    std::map<std::uint64_t, int> counts;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        ++counts[r.below(10)];
    for (const auto &[bucket, count] : counts) {
        EXPECT_GT(count, n / 10 / 2) << "bucket " << bucket;
        EXPECT_LT(count, n / 10 * 2) << "bucket " << bucket;
    }
}

TEST(Random, ChancePctExtremes)
{
    Random r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chancePct(0));
        EXPECT_TRUE(r.chancePct(100));
    }
}

TEST(Logging, WarnIncrementsCounter)
{
    setQuiet(true);
    std::uint64_t before = warnCount();
    cnvm_warn("test warning %d", 1);
    EXPECT_EQ(warnCount(), before + 1);
    setQuiet(false);
}

TEST(Logging, InformDoesNotCount)
{
    setQuiet(true);
    std::uint64_t before = warnCount();
    cnvm_inform("info message");
    EXPECT_EQ(warnCount(), before);
    setQuiet(false);
}

} // anonymous namespace
} // namespace cnvm
