/**
 * @file
 * Unit tests for the recovery engine: decryption of the persisted
 * image, undo-log rollback decisions, and detection of torn state.
 * Torn states are constructed directly through the NVM functional API
 * to exercise each recovery branch deterministically.
 */

#include <gtest/gtest.h>

#include "core/recovery.hh"
#include "core/system.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design, unsigned txns = 20)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    return cfg;
}

TEST(RecoveredImage, ReadsBackInitializedState)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    // The workload's setup state decrypts to the shadow content.
    const ShadowMem &shadow = sys.workload(0).shadowMem();
    bool all_equal = true;
    shadow.forEachLine([&](Addr addr, const LineData &expect) {
        if (image.line(addr) != expect)
            all_equal = false;
    });
    EXPECT_TRUE(all_equal);
}

TEST(RecoveredImage, NeverWrittenLinesAreZero)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(0xdead0000), LineData{});
    EXPECT_EQ(image.readU64(0xdead0040), 0u);
}

TEST(RecoveredImage, WritesOverlayReads)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    std::uint64_t v = 0x1234;
    image.write(0x10000, &v, sizeof(v));
    EXPECT_EQ(image.readU64(0x10000), 0x1234u);
}

TEST(RecoveredImage, CrossLineReads)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    std::uint8_t buf[200];
    image.write(0x10020, buf, 0); // no-op-size guard not needed; write real
    std::uint8_t data[200];
    for (unsigned i = 0; i < 200; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    image.write(0x10020, data, 200);
    std::uint8_t back[200];
    image.read(0x10020, 200, back);
    EXPECT_EQ(std::memcmp(data, back, 200), 0);
}

TEST(RecoveredImage, TornLineDecryptsToGarbage)
{
    // Manufacture the Figure-4 state: ciphertext under a new counter,
    // counter store still holding the old one.
    System sys(smallConfig(DesignPoint::SCA, 0));
    MemController &ctl = sys.controller();
    NvmDevice &nvm = sys.nvm();

    LineData plain;
    plain.fill(0x77);
    Addr addr = 0x40000;
    // Encrypt with counter 14 but persist counter 10.
    nvm.drainData(addr, ctl.engine().encrypt(addr, 14, plain));
    CounterLine counters = nvm.persistedCounters(ctl.counterLineAddr(addr));
    counters[ctl.counterSlot(addr)] = 10;
    nvm.drainCounters(ctl.counterLineAddr(addr), counters);

    RecoveredImage image(nvm, ctl);
    EXPECT_NE(image.line(addr), plain);

    // Fix the counter: now it decrypts.
    counters[ctl.counterSlot(addr)] = 14;
    nvm.drainCounters(ctl.counterLineAddr(addr), counters);
    RecoveredImage fixed(nvm, ctl);
    EXPECT_EQ(fixed.line(addr), plain);
}

// --- recovery engine branches ---------------------------------------------

class RecoveryBranchTest : public ::testing::Test
{
  protected:
    RecoveryBranchTest() : sys(smallConfig(DesignPoint::SCA, 5))
    {
        sys.run(); // all five txns commit; queues drain
        sys.controller().crash();
    }

    /** Rewrites a log header field post-crash (simulated torn state).
     *  Re-encrypts the header line with its persisted counter so only
     *  the targeted field changes. */
    void
    rewriteHeaderField(Addr field_addr, std::uint64_t value)
    {
        MemController &ctl = sys.controller();
        NvmDevice &nvm = sys.nvm();
        const LogLayout &log = sys.workload(0).log();
        Addr line = log.headerAddr();
        std::uint64_t counter =
            nvm.persistedCounters(ctl.counterLineAddr(line))
                [ctl.counterSlot(line)];
        LineData plain = ctl.engine().decrypt(
            line, counter, *nvm.persistedLine(line));
        std::memcpy(plain.data() + (field_addr - line), &value, 8);
        nvm.drainData(line, ctl.engine().encrypt(line, counter, plain));
    }

    System sys;
};

TEST_F(RecoveryBranchTest, CleanStateRecoversToLastCommit)
{
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_TRUE(report.consistent) << report.detail;
    EXPECT_FALSE(report.rolledBack);
    EXPECT_TRUE(report.digestChecked);
    EXPECT_EQ(report.committedTxns, 5u);
    EXPECT_EQ(report.reason, RecoveryFailure::None);
}

TEST_F(RecoveryBranchTest, GarbageValidFlagIsDetected)
{
    rewriteHeaderField(sys.workload(0).log().validAddr(),
                       0x4141414141414141ull);
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_FALSE(report.consistent);
    // The machine-checkable reason distinguishes the torn commit flag
    // from an undecryptable header; the string is just for humans.
    EXPECT_EQ(report.reason, RecoveryFailure::TornCommitFlag);
    EXPECT_NE(report.detail.find("valid flag"), std::string::npos);
}

TEST_F(RecoveryBranchTest, GarbageMagicIsDetected)
{
    rewriteHeaderField(sys.workload(0).log().magicAddr(), 0x999);
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_FALSE(report.consistent);
    EXPECT_EQ(report.reason, RecoveryFailure::LogHeaderUnreadable);
    EXPECT_NE(report.detail.find("header"), std::string::npos);
}

TEST(RecoveryFailureNames, AreDistinctAndStable)
{
    const RecoveryFailure all[] = {
        RecoveryFailure::None, RecoveryFailure::LogHeaderUnreadable,
        RecoveryFailure::TornCommitFlag,
        RecoveryFailure::LogDescriptorInvalid,
        RecoveryFailure::QuarantinedLines,
        RecoveryFailure::StructureInvalid,
        RecoveryFailure::NoCommittedPrefix,
    };
    for (RecoveryFailure a : all) {
        EXPECT_STRNE(recoveryFailureName(a), "?");
        for (RecoveryFailure b : all)
            if (a != b)
                EXPECT_STRNE(recoveryFailureName(a),
                             recoveryFailureName(b));
    }
}

TEST_F(RecoveryBranchTest, ValidLogWithBadChecksumIsIgnored)
{
    // valid=kValid but the checksum does not match the backups: the
    // prepare stage never finished, so recovery must NOT roll back and
    // the state still matches the last commit.
    rewriteHeaderField(sys.workload(0).log().validAddr(),
                       LogLayout::kValid);
    rewriteHeaderField(sys.workload(0).log().checksumAddr(), 0x1);
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_TRUE(report.consistent) << report.detail;
    EXPECT_FALSE(report.rolledBack);
    EXPECT_EQ(report.committedTxns, 5u);
    EXPECT_EQ(report.reason, RecoveryFailure::None);
}

TEST(Recovery, RollbackRestoresPreTxnState)
{
    // Crash mid-run, then check that when recovery does roll back, the
    // recovered digest matches a strictly earlier commit point.
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 30);
    Tick total = System(cfg).run().endTick;

    unsigned rollbacks_seen = 0;
    for (int i = 1; i <= 20; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 21);
        if (!result.crashed)
            continue;
        RecoveryEngine engine(sys.nvm(), sys.controller());
        RecoveryReport report = engine.recover(sys.workload(0));
        ASSERT_TRUE(report.consistent) << report.detail;
        if (report.rolledBack)
            ++rollbacks_seen;
        ASSERT_LE(report.committedTxns, 30u);
    }
    // Crashing at 20 points through a run of undo-logged transactions
    // must hit at least one in-flight transaction.
    EXPECT_GT(rollbacks_seen, 0u);
}

TEST(Recovery, NoEncryptionRecoversPlainly)
{
    SystemConfig cfg = smallConfig(DesignPoint::NoEncryption, 10);
    System sys(cfg);
    sys.run();
    sys.controller().crash();
    std::string why;
    EXPECT_TRUE(sys.recoveredConsistently(&why)) << why;
}

TEST(Recovery, MultiCoreRecoversEveryRegion)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 10);
    cfg.numCores = 4;
    Tick total = System(cfg).run().endTick;
    System sys(cfg);
    RunResult result = sys.runWithCrashAt(total / 2);
    ASSERT_TRUE(result.crashed);
    auto reports = sys.recoverAll();
    ASSERT_EQ(reports.size(), 4u);
    for (const auto &report : reports)
        EXPECT_TRUE(report.consistent) << report.detail;
}

TEST(Recovery, UnsafeDesignEventuallyFails)
{
    SystemConfig cfg = smallConfig(DesignPoint::Unsafe, 30);
    Tick total = System(cfg).run().endTick;
    unsigned failures = 0;
    for (int i = 1; i <= 10; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 11);
        if (!result.crashed)
            continue;
        std::string why;
        if (!sys.recoveredConsistently(&why))
            ++failures;
    }
    EXPECT_GT(failures, 0u);
}

} // anonymous namespace
} // namespace cnvm
