/**
 * @file
 * Unit tests for the recovery engine: decryption of the persisted
 * image, undo-log rollback decisions, and detection of torn state.
 * Torn states are constructed directly through the NVM functional API
 * to exercise each recovery branch deterministically.
 */

#include <gtest/gtest.h>

#include "core/recovery.hh"
#include "core/recovery_crash.hh"
#include "core/system.hh"
#include "nvm/fault_model.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design, unsigned txns = 20)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    return cfg;
}

TEST(RecoveredImage, ReadsBackInitializedState)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    // The workload's setup state decrypts to the shadow content.
    const ShadowMem &shadow = sys.workload(0).shadowMem();
    bool all_equal = true;
    shadow.forEachLine([&](Addr addr, const LineData &expect) {
        if (image.line(addr) != expect)
            all_equal = false;
    });
    EXPECT_TRUE(all_equal);
}

TEST(RecoveredImage, NeverWrittenLinesAreZero)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(0xdead0000), LineData{});
    EXPECT_EQ(image.readU64(0xdead0040), 0u);
}

TEST(RecoveredImage, WritesOverlayReads)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    std::uint64_t v = 0x1234;
    image.write(0x10000, &v, sizeof(v));
    EXPECT_EQ(image.readU64(0x10000), 0x1234u);
}

TEST(RecoveredImage, CrossLineReads)
{
    System sys(smallConfig(DesignPoint::SCA, 0));
    RecoveredImage image(sys.nvm(), sys.controller());
    std::uint8_t buf[200];
    image.write(0x10020, buf, 0); // no-op-size guard not needed; write real
    std::uint8_t data[200];
    for (unsigned i = 0; i < 200; ++i)
        data[i] = static_cast<std::uint8_t>(i);
    image.write(0x10020, data, 200);
    std::uint8_t back[200];
    image.read(0x10020, 200, back);
    EXPECT_EQ(std::memcmp(data, back, 200), 0);
}

TEST(RecoveredImage, TornLineDecryptsToGarbage)
{
    // Manufacture the Figure-4 state: ciphertext under a new counter,
    // counter store still holding the old one.
    System sys(smallConfig(DesignPoint::SCA, 0));
    MemController &ctl = sys.controller();
    NvmDevice &nvm = sys.nvm();

    LineData plain;
    plain.fill(0x77);
    Addr addr = 0x40000;
    // Encrypt with counter 14 but persist counter 10.
    nvm.drainData(addr, ctl.engine().encrypt(addr, 14, plain));
    CounterLine counters = nvm.persistedCounters(ctl.counterLineAddr(addr));
    counters[ctl.counterSlot(addr)] = 10;
    nvm.drainCounters(ctl.counterLineAddr(addr), counters);

    RecoveredImage image(nvm, ctl);
    EXPECT_NE(image.line(addr), plain);

    // Fix the counter: now it decrypts.
    counters[ctl.counterSlot(addr)] = 14;
    nvm.drainCounters(ctl.counterLineAddr(addr), counters);
    RecoveredImage fixed(nvm, ctl);
    EXPECT_EQ(fixed.line(addr), plain);
}

// --- recovery engine branches ---------------------------------------------

class RecoveryBranchTest : public ::testing::Test
{
  protected:
    RecoveryBranchTest() : sys(smallConfig(DesignPoint::SCA, 5))
    {
        sys.run(); // all five txns commit; queues drain
        sys.controller().crash();
    }

    /** Rewrites a log header field post-crash (simulated torn state).
     *  Re-encrypts the header line with its persisted counter so only
     *  the targeted field changes. */
    void
    rewriteHeaderField(Addr field_addr, std::uint64_t value)
    {
        MemController &ctl = sys.controller();
        NvmDevice &nvm = sys.nvm();
        const LogLayout &log = sys.workload(0).log();
        Addr line = log.headerAddr();
        std::uint64_t counter =
            nvm.persistedCounters(ctl.counterLineAddr(line))
                [ctl.counterSlot(line)];
        LineData plain = ctl.engine().decrypt(
            line, counter, *nvm.persistedLine(line));
        std::memcpy(plain.data() + (field_addr - line), &value, 8);
        nvm.drainData(line, ctl.engine().encrypt(line, counter, plain));
    }

    System sys;
};

TEST_F(RecoveryBranchTest, CleanStateRecoversToLastCommit)
{
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_TRUE(report.consistent) << report.detail;
    EXPECT_FALSE(report.rolledBack);
    EXPECT_TRUE(report.digestChecked);
    EXPECT_EQ(report.committedTxns, 5u);
    EXPECT_EQ(report.reason, RecoveryFailure::None);
}

TEST_F(RecoveryBranchTest, GarbageValidFlagIsDetected)
{
    rewriteHeaderField(sys.workload(0).log().validAddr(),
                       0x4141414141414141ull);
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_FALSE(report.consistent);
    // The machine-checkable reason distinguishes the torn commit flag
    // from an undecryptable header; the string is just for humans.
    EXPECT_EQ(report.reason, RecoveryFailure::TornCommitFlag);
    EXPECT_NE(report.detail.find("valid flag"), std::string::npos);
}

TEST_F(RecoveryBranchTest, GarbageMagicIsDetected)
{
    rewriteHeaderField(sys.workload(0).log().magicAddr(), 0x999);
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_FALSE(report.consistent);
    EXPECT_EQ(report.reason, RecoveryFailure::LogHeaderUnreadable);
    EXPECT_NE(report.detail.find("header"), std::string::npos);
}

TEST(RecoveryFailureNames, AreDistinctAndStable)
{
    const RecoveryFailure all[] = {
        RecoveryFailure::None, RecoveryFailure::LogHeaderUnreadable,
        RecoveryFailure::TornCommitFlag,
        RecoveryFailure::LogDescriptorInvalid,
        RecoveryFailure::QuarantinedLines,
        RecoveryFailure::StructureInvalid,
        RecoveryFailure::NoCommittedPrefix,
    };
    for (RecoveryFailure a : all) {
        EXPECT_STRNE(recoveryFailureName(a), "?");
        for (RecoveryFailure b : all)
            if (a != b)
                EXPECT_STRNE(recoveryFailureName(a),
                             recoveryFailureName(b));
    }
}

TEST_F(RecoveryBranchTest, ValidLogWithBadChecksumIsIgnored)
{
    // valid=kValid but the checksum does not match the backups: the
    // prepare stage never finished, so recovery must NOT roll back and
    // the state still matches the last commit.
    rewriteHeaderField(sys.workload(0).log().validAddr(),
                       LogLayout::kValid);
    rewriteHeaderField(sys.workload(0).log().checksumAddr(), 0x1);
    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_TRUE(report.consistent) << report.detail;
    EXPECT_FALSE(report.rolledBack);
    EXPECT_EQ(report.committedTxns, 5u);
    EXPECT_EQ(report.reason, RecoveryFailure::None);
}

TEST(Recovery, RollbackRestoresPreTxnState)
{
    // Crash mid-run, then check that when recovery does roll back, the
    // recovered digest matches a strictly earlier commit point.
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 30);
    Tick total = System(cfg).run().endTick;

    unsigned rollbacks_seen = 0;
    for (int i = 1; i <= 20; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 21);
        if (!result.crashed)
            continue;
        RecoveryEngine engine(sys.nvm(), sys.controller());
        RecoveryReport report = engine.recover(sys.workload(0));
        ASSERT_TRUE(report.consistent) << report.detail;
        if (report.rolledBack)
            ++rollbacks_seen;
        ASSERT_LE(report.committedTxns, 30u);
    }
    // Crashing at 20 points through a run of undo-logged transactions
    // must hit at least one in-flight transaction.
    EXPECT_GT(rollbacks_seen, 0u);
}

TEST(Recovery, NoEncryptionRecoversPlainly)
{
    SystemConfig cfg = smallConfig(DesignPoint::NoEncryption, 10);
    System sys(cfg);
    sys.run();
    sys.controller().crash();
    std::string why;
    EXPECT_TRUE(sys.recoveredConsistently(&why)) << why;
}

TEST(Recovery, MultiCoreRecoversEveryRegion)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 10);
    cfg.numCores = 4;
    Tick total = System(cfg).run().endTick;
    System sys(cfg);
    RunResult result = sys.runWithCrashAt(total / 2);
    ASSERT_TRUE(result.crashed);
    auto reports = sys.recoverAll();
    ASSERT_EQ(reports.size(), 4u);
    for (const auto &report : reports)
        EXPECT_TRUE(report.consistent) << report.detail;
}

// --- integrity repair window and quarantine/rollback regressions ----------

SystemConfig
integrityConfig(DesignPoint design, unsigned txns = 5)
{
    SystemConfig cfg = smallConfig(design, txns);
    cfg.memctl.integrityMac = true;
    return cfg;
}

class IntegrityRepairTest : public ::testing::Test
{
  protected:
    IntegrityRepairTest() : sys(integrityConfig(DesignPoint::SCA, 5))
    {
        sys.run();
        sys.controller().crash();
    }

    /** Plants a counter-rollback victim: data, MAC and cipher agree at
     *  @p true_counter, but the counter store says @p stored_counter. */
    void
    plantLine(Addr addr, std::uint64_t stored_counter,
              std::uint64_t true_counter, const LineData &plain)
    {
        MemController &ctl = sys.controller();
        NvmDevice &nvm = sys.nvm();
        LineData cipher = ctl.engine().encrypt(addr, true_counter, plain);
        nvm.drainData(addr, cipher, true_counter);
        nvm.persistedState().drainMac(
            addr, ctl.engine().lineMac(addr, true_counter, cipher));
        CounterLine counters =
            nvm.persistedCounters(ctl.counterLineAddr(addr));
        counters[ctl.counterSlot(addr)] = stored_counter;
        nvm.drainCounters(ctl.counterLineAddr(addr), counters);
    }

    /** Flips a persisted ciphertext byte under an unchanged MAC: no
     *  counter in any window verifies, so the line must quarantine. */
    void
    corruptBeyondRepair(Addr line_addr)
    {
        NvmDevice &nvm = sys.nvm();
        const LineData *cipher = nvm.persistedLine(line_addr);
        ASSERT_NE(cipher, nullptr);
        LineData bad = *cipher;
        bad[0] ^= 0xff;
        nvm.drainData(line_addr, bad,
                      nvm.persistedCipherCounter(line_addr));
    }

    /** Rewrites one u64 field post-crash, keeping the line's MAC
     *  consistent so only the targeted field changes. */
    void
    rewriteFieldWithMac(Addr field_addr, std::uint64_t value)
    {
        MemController &ctl = sys.controller();
        NvmDevice &nvm = sys.nvm();
        Addr line = lineAlign(field_addr);
        std::uint64_t counter =
            nvm.persistedCounters(ctl.counterLineAddr(line))
                [ctl.counterSlot(line)];
        const LineData *stored = nvm.persistedLine(line);
        ASSERT_NE(stored, nullptr);
        LineData plain = ctl.engine().decrypt(line, counter, *stored);
        std::memcpy(plain.data() + (field_addr - line), &value, 8);
        LineData cipher = ctl.engine().encrypt(line, counter, plain);
        nvm.drainData(line, cipher, counter);
        nvm.persistedState().drainMac(
            line, ctl.engine().lineMac(line, counter, cipher));
    }

    /** First data line of the workload's region. */
    Addr
    firstDataLine()
    {
        Addr target = 0;
        sys.workload(0).shadowMem().forEachLine(
            [&](Addr a, const LineData &) {
                if (target == 0)
                    target = a;
            });
        return target;
    }

    System sys;
};

TEST_F(IntegrityRepairTest, WindowRepairNearCounterMax)
{
    // A stored counter within the repair window of UINT64_MAX: the
    // outward search must clamp at the type's edge instead of wrapping
    // (counter + window overflowing to a tiny value disabled the whole
    // upward search and condemned repairable lines).
    LineData plain;
    plain.fill(0x5a);
    Addr addr = firstDataLine();
    plantLine(addr, UINT64_MAX - 1, UINT64_MAX - 5, plain);

    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(addr), plain);
    EXPECT_EQ(image.windowRepairs(), 1u);
    EXPECT_EQ(image.quarantinedCount(), 0u);
}

TEST_F(IntegrityRepairTest, WindowRepairUpwardAtCounterMax)
{
    // True counter above the stored one, right at the edge: the upward
    // distance clamps to UINT64_MAX - stored and still finds it.
    LineData plain;
    plain.fill(0xa5);
    Addr addr = firstDataLine();
    plantLine(addr, UINT64_MAX - 2, UINT64_MAX, plain);

    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(addr), plain);
    EXPECT_EQ(image.windowRepairs(), 1u);
}

TEST_F(IntegrityRepairTest, WindowRepairNearCounterZero)
{
    // Stored counter near zero: the downward distance clamps to the
    // stored value (no wrap to huge counters), the upward search still
    // spans the full window.
    LineData plain;
    plain.fill(0x3c);
    Addr addr = firstDataLine();
    plantLine(addr, 2, 30, plain);

    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(addr), plain);
    EXPECT_EQ(image.windowRepairs(), 1u);
    EXPECT_EQ(image.quarantinedCount(), 0u);
}

TEST_F(IntegrityRepairTest, WindowRepairDownward)
{
    // Counter-store ran ahead of the data (rollback case): the true
    // counter sits below the stored one, inside the window.
    LineData plain;
    plain.fill(0x11);
    Addr addr = firstDataLine();
    plantLine(addr, 1000, 1000 - 40, plain);

    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(addr), plain);
    EXPECT_EQ(image.windowRepairs(), 1u);
}

TEST_F(IntegrityRepairTest, BeyondWindowQuarantines)
{
    // One generation past the window in both directions: unrepairable,
    // the line reads as zeros and stays quarantined.
    const unsigned window = sys.controller().config().macRepairWindow;
    LineData plain;
    plain.fill(0x77);
    Addr addr = firstDataLine();
    plantLine(addr, 2000, 2000 + window + 1, plain);

    RecoveredImage image(sys.nvm(), sys.controller());
    EXPECT_EQ(image.line(addr), LineData{});
    EXPECT_EQ(image.windowRepairs(), 0u);
    EXPECT_EQ(image.detectedCorruptions(), 1u);
    EXPECT_TRUE(image.isQuarantined(addr));
}

TEST_F(IntegrityRepairTest, QuarantinedBackupRestoresNothing)
{
    // The stale-quarantine regression: a valid undo log whose backup
    // line is corrupt beyond repair, with a stored checksum that
    // matches the backup reading as zeros (the checksum walk is what
    // quarantines the backup). Rollback must read the backup before
    // consulting the quarantine, then restore *nothing* from it: the
    // target keeps its own quarantine and content, and recovery
    // reports BOTH lines unrecoverable. The pre-fix code asked the
    // quarantine first (a stale "clean" verdict), wrote the zeroed
    // backup over the target and lifted the target's quarantine —
    // one silently zeroed line and an undercount of one.
    const LogLayout &log = sys.workload(0).log();
    Addr target = firstDataLine();
    corruptBeyondRepair(target);
    corruptBeyondRepair(log.backupAddr(0));

    rewriteFieldWithMac(log.txnIdAddr(), 1);
    rewriteFieldWithMac(log.countAddr(), 1);
    rewriteFieldWithMac(log.descAddr(0), target);

    // The checksum the prepare stage would have stored, as recovery
    // will recompute it: through an image where the corrupt backup
    // quarantines and reads zeros.
    std::uint64_t sum;
    {
        RecoveredImage probe(sys.nvm(), sys.controller());
        sum = logChecksum(probe, log, 1, 1);
        ASSERT_TRUE(probe.isQuarantined(log.backupAddr(0)));
    }
    rewriteFieldWithMac(log.checksumAddr(), sum);
    rewriteFieldWithMac(log.validAddr(), LogLayout::kValid);

    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_FALSE(report.consistent);
    EXPECT_EQ(report.reason, RecoveryFailure::QuarantinedLines);
    EXPECT_TRUE(report.rolledBack);
    EXPECT_EQ(report.detectedCorruptions, 2u);
    EXPECT_EQ(report.unrecoverableLines, 2u);
    EXPECT_EQ(report.repairedLines, 0u);
}

TEST_F(IntegrityRepairTest, IntactBackupRestoresQuarantinedTarget)
{
    // The positive direction of the same branch: corrupt only the
    // target; the intact backup rolls over it, lifts its quarantine,
    // and the line counts as repaired, not unrecoverable.
    const LogLayout &log = sys.workload(0).log();
    Addr target = firstDataLine();
    corruptBeyondRepair(target);

    LineData backup;
    backup.fill(0x42);
    {
        // Persist a known-good backup line (content + MAC).
        MemController &ctl = sys.controller();
        Addr baddr = log.backupAddr(0);
        std::uint64_t counter = sys.nvm()
            .persistedCounters(ctl.counterLineAddr(baddr))
                [ctl.counterSlot(baddr)];
        LineData cipher = ctl.engine().encrypt(baddr, counter, backup);
        sys.nvm().drainData(baddr, cipher, counter);
        sys.nvm().persistedState().drainMac(
            baddr, ctl.engine().lineMac(baddr, counter, cipher));
    }

    rewriteFieldWithMac(log.txnIdAddr(), 1);
    rewriteFieldWithMac(log.countAddr(), 1);
    rewriteFieldWithMac(log.descAddr(0), target);
    std::uint64_t sum;
    {
        RecoveredImage probe(sys.nvm(), sys.controller());
        sum = logChecksum(probe, log, 1, 1);
    }
    rewriteFieldWithMac(log.checksumAddr(), sum);
    rewriteFieldWithMac(log.validAddr(), LogLayout::kValid);

    RecoveryEngine engine(sys.nvm(), sys.controller());
    RecoveryReport report = engine.recover(sys.workload(0));
    EXPECT_TRUE(report.rolledBack);
    EXPECT_EQ(report.detectedCorruptions, 1u);
    EXPECT_EQ(report.unrecoverableLines, 0u);
    EXPECT_EQ(report.repairedLines, 1u);
    // The rolled-back array no longer matches any committed digest
    // (the backup content is synthetic), but the corruption itself is
    // fully healed — nothing remains quarantined.
    EXPECT_NE(report.reason, RecoveryFailure::QuarantinedLines);
}

TEST(RecoveryParallel, ReportsIdenticalAtAnyJobCount)
{
    // The determinism contract: with corruption present, recovery at
    // --recovery-jobs 1/2/8 must produce byte-identical reports —
    // digest included.
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = 30;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.memctl.integrityMac = true;

    Tick total = System(cfg).run().endTick;
    System sys(cfg);
    RunResult result = sys.runWithCrashAt(total / 2);
    ASSERT_TRUE(result.crashed);

    // Dose the image: one repairable counter rollback, one line gone.
    MemController &ctl = sys.controller();
    NvmDevice &nvm = sys.nvm();
    Addr lines[2] = {0, 0};
    int found = 0;
    sys.workload(0).shadowMem().forEachLine(
        [&](Addr a, const LineData &) {
            if (found < 2)
                lines[found++] = a;
        });
    ASSERT_EQ(found, 2);
    {
        // Counter-store rollback on lines[0] (repairable).
        CounterLine counters =
            nvm.persistedCounters(ctl.counterLineAddr(lines[0]));
        std::uint64_t &slot = counters[ctl.counterSlot(lines[0])];
        if (slot > 0) {
            slot -= 1;
            nvm.drainCounters(ctl.counterLineAddr(lines[0]), counters);
        }
        // Unrepairable ciphertext damage on lines[1].
        const LineData *cipher = nvm.persistedLine(lines[1]);
        ASSERT_NE(cipher, nullptr);
        LineData bad = *cipher;
        bad[5] ^= 0x80;
        nvm.drainData(lines[1], bad,
                      nvm.persistedCipherCounter(lines[1]));
    }

    std::vector<RecoveryReport> reports;
    for (unsigned jobs : {1u, 2u, 8u}) {
        RecoveryEngine engine(nvm, ctl);
        RecoveryOptions opt;
        opt.jobs = jobs;
        reports.push_back(engine.recover(sys.workload(0), nullptr, opt));
    }
    const RecoveryReport &ref = reports[0];
    EXPECT_GT(ref.detectedCorruptions, 0u);
    for (std::size_t i = 1; i < reports.size(); ++i) {
        const RecoveryReport &r = reports[i];
        EXPECT_EQ(r.consistent, ref.consistent);
        EXPECT_EQ(r.reason, ref.reason);
        EXPECT_EQ(r.rolledBack, ref.rolledBack);
        EXPECT_EQ(r.committedTxns, ref.committedTxns);
        EXPECT_EQ(r.digestChecked, ref.digestChecked);
        EXPECT_EQ(r.digestComputed, ref.digestComputed);
        EXPECT_EQ(r.recoveredDigest, ref.recoveredDigest);
        EXPECT_EQ(r.detectedCorruptions, ref.detectedCorruptions);
        EXPECT_EQ(r.repairedLines, ref.repairedLines);
        EXPECT_EQ(r.unrecoverableLines, ref.unrecoverableLines);
        EXPECT_EQ(r.detail, ref.detail);
    }
}

TEST(RecoveryCrash, InterruptedRecoveryConverges)
{
    // The idempotence invariant, sweep-sized down for a unit test:
    // interrupted write-back recovery attempts followed by a complete
    // one must converge to the uninterrupted reference at every
    // planned interruption point, media faults dosed.
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = 20;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.memctl.integrityMac = true;

    RecoveryCrashOptions opt;
    opt.points = 8;
    opt.images = 4;
    opt.recoveryJobs = 2;
    opt.faults = FaultSpec::allKinds(1);
    RecoveryCrashResult result = runRecoveryCrashSweep(cfg, opt);

    ASSERT_GT(result.images, 0u);
    ASSERT_FALSE(result.points.empty());
    EXPECT_GT(result.firedPoints(), 0u);
    EXPECT_EQ(result.divergentPoints(), 0u)
        << result.fingerprint();
}

TEST(RecoveryCrash, SweepDeterministicAcrossJobs)
{
    // The whole family — capture, reference, interruption points — is
    // a pure function of (config, seeds): byte-identical fingerprints
    // serial and parallel, at any recovery-jobs value.
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = 20;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.memctl.integrityMac = true;

    RecoveryCrashOptions serial;
    serial.points = 6;
    serial.images = 4;
    serial.faults = FaultSpec::allKinds(1);
    RecoveryCrashOptions parallel = serial;
    parallel.jobs = 4;
    parallel.recoveryJobs = 4;

    std::string fp1 = runRecoveryCrashSweep(cfg, serial).fingerprint();
    std::string fpN = runRecoveryCrashSweep(cfg, parallel).fingerprint();
    EXPECT_FALSE(fp1.empty());
    EXPECT_EQ(fp1, fpN);
}

TEST(Recovery, UnsafeDesignEventuallyFails)
{
    SystemConfig cfg = smallConfig(DesignPoint::Unsafe, 30);
    Tick total = System(cfg).run().endTick;
    unsigned failures = 0;
    for (int i = 1; i <= 10; ++i) {
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total * i / 11);
        if (!result.crashed)
            continue;
        std::string why;
        if (!sys.recoveredConsistently(&why))
            ++failures;
    }
    EXPECT_GT(failures, 0u);
}

} // anonymous namespace
} // namespace cnvm
