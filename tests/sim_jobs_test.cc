/**
 * @file
 * Partitioned-kernel determinism tests: the full stats dump and the
 * crash-sweep fingerprint must be byte-identical at any --sim-jobs
 * value — the simulation's behavior is a pure function of simulated
 * time, never of the host thread count. Also covers the satellite
 * fixes that ride along: canonical `memctl.ch0.` stat names with the
 * unsuffixed compat aliases, and crash capture at window barriers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/crash_sweep.hh"
#include "core/system.hh"

namespace cnvm
{
namespace
{

SystemConfig
simJobsConfig(DesignPoint design, unsigned channels, unsigned sim_jobs,
              unsigned txns = 15)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.numCores = 1;
    cfg.numChannels = channels;
    cfg.simJobs = sim_jobs;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.memctl.counterCacheBytes = 16 << 10;
    return cfg;
}

/** Full stats dump plus the run result, as one comparable string. */
std::string
runDump(const SystemConfig &cfg)
{
    System sys(cfg);
    RunResult result = sys.run();
    std::ostringstream os;
    sys.statsRegistry().dump(os);
    os << "endTick=" << result.endTick << " txns=" << result.txnsIssued
       << "\n";
    return os.str();
}

/** Byte-identity of the full dump at sim-jobs 1/2/4, per channel
 *  count. The partitioned-serial run at 1 is the reference. */
void
expectDumpIdentity(DesignPoint design)
{
    for (unsigned channels : {1u, 4u, 8u}) {
        std::string ref = runDump(simJobsConfig(design, channels, 1));
        EXPECT_FALSE(ref.empty());
        for (unsigned jobs : {2u, 4u}) {
            std::string dump =
                runDump(simJobsConfig(design, channels, jobs));
            EXPECT_EQ(ref, dump)
                << designName(design) << " channels=" << channels
                << " sim-jobs=" << jobs
                << " diverged from the sim-jobs=1 reference";
        }
    }
}

TEST(SimJobsIdentity, StatsDumpSCA) { expectDumpIdentity(DesignPoint::SCA); }
TEST(SimJobsIdentity, StatsDumpFCA) { expectDumpIdentity(DesignPoint::FCA); }

TEST(SimJobsIdentity, StatsDumpColocatedCC)
{
    expectDumpIdentity(DesignPoint::ColocatedCC);
}

TEST(SimJobsIdentity, StatsDumpUnsafe)
{
    expectDumpIdentity(DesignPoint::Unsafe);
}

/** Sweep fingerprints across job counts and Replay/Fork modes: crash
 *  capture at a window barrier commutes with both. */
void
expectSweepIdentity(DesignPoint design)
{
    SystemConfig cfg = simJobsConfig(design, 4, 1, 25);
    SweepOptions opt;
    opt.points = 8;

    std::string ref = runSweep(cfg, opt).fingerprint();
    ASSERT_FALSE(ref.empty());
    for (unsigned jobs : {2u, 4u}) {
        cfg.simJobs = jobs;
        for (SweepMode mode : {SweepMode::Replay, SweepMode::Fork}) {
            opt.mode = mode;
            EXPECT_EQ(ref, runSweep(cfg, opt).fingerprint())
                << designName(design) << " sim-jobs=" << jobs
                << " mode=" << sweepModeName(mode);
        }
    }
}

TEST(SimJobsIdentity, SweepFingerprintSCA)
{
    expectSweepIdentity(DesignPoint::SCA);
}

TEST(SimJobsIdentity, SweepFingerprintUnsafe)
{
    expectSweepIdentity(DesignPoint::Unsafe);
}

// ----------------------------------------------------------------------
// Partitioned crash + recovery
// ----------------------------------------------------------------------

TEST(SimJobsCrash, PartitionedCrashRecoversConsistently)
{
    // Probe for the total runtime, crash halfway, recover: the
    // partitioned crash path (barrier-deferred fire, global ADR cut
    // over every channel) must hand recovery a consistent image.
    SystemConfig cfg = simJobsConfig(DesignPoint::SCA, 4, 2, 25);
    Tick total = System(cfg).run().endTick;
    ASSERT_GT(total, 0u);

    System sys(cfg);
    RunResult result = sys.runWithCrashAt(total / 2);
    ASSERT_TRUE(result.crashed);
    EXPECT_TRUE(sys.crashSnapshot().valid);
    std::string why;
    EXPECT_TRUE(sys.recoveredConsistently(&why)) << why;
}

TEST(SimJobsCrash, CrashTickIdenticalAcrossJobCounts)
{
    // The barrier a fire lands on is a function of simulated time
    // only, so the captured crash tick cannot move with the host
    // thread count.
    SystemConfig cfg = simJobsConfig(DesignPoint::SCA, 4, 1, 25);
    Tick total = System(cfg).run().endTick;

    std::vector<Tick> ends;
    for (unsigned jobs : {1u, 2u, 4u}) {
        cfg.simJobs = jobs;
        System sys(cfg);
        RunResult result = sys.runWithCrashAt(total / 2);
        ASSERT_TRUE(result.crashed) << "sim-jobs=" << jobs;
        ends.push_back(result.endTick);
    }
    EXPECT_EQ(ends[0], ends[1]);
    EXPECT_EQ(ends[0], ends[2]);
}

// ----------------------------------------------------------------------
// Channel-0 stat naming: canonical prefix + compat alias
// ----------------------------------------------------------------------

TEST(ChannelStatNames, ChannelZeroIsCanonicalWithCompatAlias)
{
    // Channel 0 registers under `memctl.ch0.` like every other channel
    // and keeps the historical unsuffixed names as lookup aliases; the
    // dump shows only the canonical spelling.
    SystemConfig cfg = simJobsConfig(DesignPoint::SCA, 1, 0);
    System sys(cfg);
    sys.run();

    stats::StatRegistry &reg = sys.statsRegistry();
    const stats::Stat *canonical = reg.find("memctl.ch0.data_inserts");
    const stats::Stat *alias = reg.find("memctl.data_inserts");
    ASSERT_NE(canonical, nullptr);
    ASSERT_NE(alias, nullptr);
    EXPECT_EQ(canonical, alias); // same stat, two names
    EXPECT_EQ(reg.lookup("ctrcache.ch0.read_hits"),
              reg.lookup("ctrcache.read_hits"));

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("memctl.ch0."), std::string::npos);
    EXPECT_EQ(os.str().find("\nmemctl.data_inserts"),
              std::string::npos)
        << "aliases must not appear in the dump";
}

} // anonymous namespace
} // namespace cnvm
