/**
 * @file
 * Tests for the Bonsai Merkle Tree integrity layer and the recovery
 * paths it hardens: tree-hash algebra, crash-flush/recompute root
 * agreement, the multi-match-aware counter-window repair, directed
 * replay detection (tree on) vs silent replay (MAC-only), the
 * quarantine-race pre-scan determinism contract, replay-dosed sweep
 * fingerprint identity across modes and job counts, and idempotent
 * crash-during-tree-reconstruction recovery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/crash_sweep.hh"
#include "core/recovery.hh"
#include "core/recovery_crash.hh"
#include "core/system.hh"
#include "integrity/integrity_tree.hh"
#include "nvm/fault_model.hh"
#include "runner/runner.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design, unsigned txns = 25)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    cfg.memctl.counterCacheBytes = 16 << 10;
    return cfg;
}

SystemConfig
treeConfig(DesignPoint design, unsigned txns = 25)
{
    SystemConfig cfg = smallConfig(design, txns);
    cfg.memctl.integrityMac = true;
    cfg.memctl.integrityTree = true;
    return cfg;
}

// --- tree-hash algebra ----------------------------------------------------

TEST(TreeHash, ZeroHashIsTheCombineOfZeroChildren)
{
    // The sparse-tree contract: an absent subtree at level L+1 must
    // hash exactly as eight absent subtrees at level L would.
    for (unsigned level = 0; level < treeRootLevel; ++level) {
        std::uint64_t children[treeArity];
        for (unsigned i = 0; i < treeArity; ++i)
            children[i] = treeZeroHash(level);
        EXPECT_EQ(treeCombine(children), treeZeroHash(level + 1))
            << "level " << level;
    }
}

TEST(TreeHash, SlotHashDistinguishesCounters)
{
    EXPECT_NE(treeSlotHash(0), treeSlotHash(1));
    EXPECT_NE(treeSlotHash(41), treeSlotHash(42));
    EXPECT_EQ(treeSlotHash(42), treeSlotHash(42));
}

TEST(TreeHash, CombineIsSensitiveToEveryChild)
{
    std::uint64_t children[treeArity];
    for (unsigned i = 0; i < treeArity; ++i)
        children[i] = treeSlotHash(i);
    const std::uint64_t base = treeCombine(children);
    for (unsigned i = 0; i < treeArity; ++i) {
        std::uint64_t tweaked[treeArity];
        std::copy(children, children + treeArity, tweaked);
        tweaked[i] ^= 1;
        EXPECT_NE(treeCombine(tweaked), base) << "child " << i;
    }
}

// --- crash flush vs recompute ---------------------------------------------

TEST(TreeRoot, CrashFlushAgreesWithBottomUpRecompute)
{
    System sys(treeConfig(DesignPoint::SCA));
    sys.run();
    sys.controller().crash();

    const PersistImage &img = sys.nvm().persistedState();
    const Addr ctr_base = sys.controller().config().counterRegionBase;
    ASSERT_NE(img.persistedTreeRoot(), nullptr);
    EXPECT_EQ(computeTreeRoot(img, ctr_base), *img.persistedTreeRoot());
    EXPECT_FALSE(img.persistedTreeLeafIndices().empty());
}

TEST(TreeRoot, ReplayBreaksTheRootAndRebuildRestoresIt)
{
    System sys(treeConfig(DesignPoint::SCA));
    sys.run();
    MemController &ctl = sys.controller();
    ctl.crash();

    PersistImage &img = sys.nvm().persistedState();
    const Addr ctr_base = ctl.config().counterRegionBase;
    const std::uint64_t flushed = *img.persistedTreeRoot();

    std::vector<Addr> victims = img.replayableLineAddrs();
    ASSERT_FALSE(victims.empty());
    Addr addr = victims.front();
    ASSERT_TRUE(img.replayLine(addr, ctl.counterLineAddr(addr),
                               ctl.counterSlot(addr)));
    EXPECT_TRUE(img.lineReplayed(addr));

    // The stale counter word moved a leaf, so the store no longer
    // hashes to the persisted root...
    EXPECT_NE(computeTreeRoot(img, ctr_base), flushed);

    // ...and a full rebuild converges the persisted nodes back onto
    // the (now stale) store.
    std::uint64_t rebuilt =
        rebuildTree(img, ctr_base, 0, ~Addr(0));
    EXPECT_EQ(rebuilt, *img.persistedTreeRoot());
    EXPECT_EQ(computeTreeRoot(img, ctr_base), rebuilt);
    EXPECT_NE(rebuilt, flushed);
}

// --- multi-match window repair --------------------------------------------

TEST(RepairWindow, SingleMatchIsReturnedWithoutConfirmation)
{
    auto verifies = [](std::uint64_t c) { return c == 103; };
    auto got = repairCounterWindow(100, 8, verifies, {});
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 103u);
}

TEST(RepairWindow, NoMatchReturnsNothing)
{
    auto verifies = [](std::uint64_t) { return false; };
    EXPECT_FALSE(repairCounterWindow(100, 8, verifies, {}).has_value());
}

TEST(RepairWindow, TwoMatchesWithoutTreeAreAmbiguous)
{
    // The truncated-MAC collision: two counters in the window verify.
    // The legacy nearest-first search would silently "repair" to 102;
    // without a confirming tree the search must refuse to guess.
    auto verifies = [](std::uint64_t c) { return c == 102 || c == 96; };
    EXPECT_FALSE(repairCounterWindow(100, 8, verifies, {}).has_value());
}

TEST(RepairWindow, TreeConfirmationBreaksTheTie)
{
    auto verifies = [](std::uint64_t c) { return c == 102 || c == 96; };

    // The tree votes for the farther candidate: it wins anyway.
    auto far = repairCounterWindow(100, 8, verifies,
                                   [](std::uint64_t c) { return c == 96; });
    ASSERT_TRUE(far.has_value());
    EXPECT_EQ(*far, 96u);

    // Both confirmed (degenerate tree): the nearest candidate wins.
    auto near = repairCounterWindow(100, 8, verifies,
                                    [](std::uint64_t) { return true; });
    ASSERT_TRUE(near.has_value());
    EXPECT_EQ(*near, 102u);

    // Confirmation that rejects both: still ambiguous.
    EXPECT_FALSE(repairCounterWindow(100, 8, verifies,
                                     [](std::uint64_t) { return false; })
                     .has_value());
}

// --- directed replay detection --------------------------------------------

TEST(ReplayDetection, TreeCatchesAStaleTripleTheMacAccepts)
{
    System sys(treeConfig(DesignPoint::SCA));
    sys.run();
    MemController &ctl = sys.controller();
    ctl.crash();

    PersistImage &img = sys.nvm().persistedState();
    std::vector<Addr> victims = img.replayableLineAddrs();
    ASSERT_FALSE(victims.empty());
    Addr addr = victims.front();
    ASSERT_TRUE(img.replayLine(addr, ctl.counterLineAddr(addr),
                               ctl.counterSlot(addr)));

    RecoveredImage image(sys.nvm(), ctl);
    EXPECT_TRUE(image.treeRootMismatch());
    image.line(addr);
    EXPECT_EQ(image.replaysDetected(), 1u);
    EXPECT_TRUE(image.isQuarantined(addr));
    // The triple is stale-but-valid: the MAC never fired, so this is
    // not double-counted as a detected corruption.
    EXPECT_EQ(image.detectedCorruptions(), 0u);
}

TEST(ReplayDetection, MacOnlyConsumesTheSameReplaySilently)
{
    // The negative control: identical attack, tree off. Every
    // per-line check passes and recovery never notices.
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;
    System sys(cfg);
    sys.run();
    MemController &ctl = sys.controller();
    ctl.crash();

    PersistImage &img = sys.nvm().persistedState();
    std::vector<Addr> victims = img.replayableLineAddrs();
    ASSERT_FALSE(victims.empty());
    Addr addr = victims.front();
    ASSERT_TRUE(img.replayLine(addr, ctl.counterLineAddr(addr),
                               ctl.counterSlot(addr)));

    RecoveredImage image(sys.nvm(), ctl);
    EXPECT_FALSE(image.treeRootMismatch());
    image.line(addr);
    EXPECT_EQ(image.replaysDetected(), 0u);
    EXPECT_EQ(image.detectedCorruptions(), 0u);
    EXPECT_EQ(image.quarantinedCount(), 0u);
}

// --- quarantine-race regression -------------------------------------------

TEST(QuarantineRace, ParallelPreScanQuarantinesAcrossShardsLikeSerial)
{
    // Regression for the parallel pre-scan data-race hazard: corrupt
    // lines in several distinct 16 KB shards so multiple workers
    // produce quarantine verdicts concurrently, then require the
    // pooled scan's bookkeeping — quarantine set included — to be
    // identical to the serial reference. Run under TSan, this is the
    // test that fails if any shard ever touches shared state directly
    // instead of handing verdicts to the merge.
    SystemConfig cfg = smallConfig(DesignPoint::SCA, 10);
    cfg.memctl.integrityMac = true;
    System sys(cfg);
    sys.run();
    MemController &ctl = sys.controller();
    ctl.crash();

    const Workload &wl = sys.workload(0);
    PersistImage &img = sys.nvm().persistedState();

    std::vector<Addr> persisted = img.dataLineAddrs();
    std::sort(persisted.begin(), persisted.end());
    std::vector<Addr> victims;
    Addr next_shard = wl.regionBase();
    for (Addr a : persisted) {
        if (a < next_shard || a >= wl.regionEnd())
            continue;
        victims.push_back(a);
        next_shard = a + (32 << 10); // skip ahead ≥ 2 shards
    }
    ASSERT_GE(victims.size(), 2u);

    LineData garbage;
    for (std::size_t i = 0; i < victims.size(); ++i) {
        garbage.fill(static_cast<std::uint8_t>(0x51 + i));
        img.corruptDataLine(victims[i], garbage);
    }

    RecoveredImage serial(sys.nvm(), ctl);
    serial.preScan(wl.regionBase(), wl.regionEnd(), nullptr, nullptr);

    WorkPool pool(4);
    RecoveredImage pooled(sys.nvm(), ctl);
    pooled.preScan(wl.regionBase(), wl.regionEnd(), &pool, nullptr);

    EXPECT_EQ(serial.quarantinedCount(), victims.size());
    EXPECT_EQ(pooled.quarantinedCount(), serial.quarantinedCount());
    EXPECT_EQ(pooled.detectedCorruptions(), serial.detectedCorruptions());
    EXPECT_EQ(pooled.windowRepairs(), serial.windowRepairs());
    EXPECT_EQ(pooled.replaysDetected(), serial.replaysDetected());
    for (Addr a : victims) {
        EXPECT_TRUE(serial.isQuarantined(a)) << std::hex << a;
        EXPECT_TRUE(pooled.isQuarantined(a)) << std::hex << a;
    }
}

// --- replay-dosed sweeps --------------------------------------------------

TEST(ReplaySweep, TreeOnNothingSilentAndReplaysCaught)
{
    SweepOptions opt;
    opt.points = 20;
    opt.mode = SweepMode::Fork;
    opt.faults = FaultSpec::allKindsWithReplays(7);
    SweepResult r = runSweep(treeConfig(DesignPoint::SCA), opt);

    EXPECT_GT(r.totalOf(&SweepPoint::replayedLines), 0u);
    EXPECT_GT(r.totalOf(&SweepPoint::replaysDetected), 0u);
    EXPECT_EQ(r.silentPoints(), 0u);
    EXPECT_EQ(r.silentReplayPoints(), 0u);
}

TEST(ReplaySweep, MacOnlyLetsReplaysThroughSilently)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;

    SweepOptions opt;
    opt.points = 20;
    opt.mode = SweepMode::Fork;
    opt.faults = FaultSpec::allKindsWithReplays(7);
    SweepResult r = runSweep(cfg, opt);

    EXPECT_GT(r.totalOf(&SweepPoint::replayedLines), 0u);
    EXPECT_EQ(r.totalOf(&SweepPoint::replaysDetected), 0u);
    EXPECT_GT(r.silentReplayPoints(), 0u);
}

TEST(ReplaySweep, FingerprintIdenticalAcrossModesAndJobs)
{
    // The tree-enabled extension of the PR-5 contract: a replay-dosed
    // sweep fingerprints byte-identically in Replay and Fork mode at
    // any jobs / recovery-jobs combination.
    SystemConfig cfg = treeConfig(DesignPoint::SCA);

    SweepOptions ref_opt;
    ref_opt.points = 8;
    ref_opt.faults = FaultSpec::allKindsWithReplays(42);
    std::string ref = runSweep(cfg, ref_opt).fingerprint();
    ASSERT_FALSE(ref.empty());
    EXPECT_NE(ref.find("+f("), std::string::npos);
    // Replayed lines annotate the fingerprint (the `p` atom).
    EXPECT_NE(ref.find("p"), std::string::npos);

    for (SweepMode mode : {SweepMode::Replay, SweepMode::Fork}) {
        for (unsigned jobs : {1u, 4u}) {
            SweepOptions opt = ref_opt;
            opt.mode = mode;
            opt.jobs = jobs;
            opt.recoveryJobs = jobs;
            EXPECT_EQ(runSweep(cfg, opt).fingerprint(), ref)
                << sweepModeName(mode) << " jobs=" << jobs;
        }
    }
}

// --- crash during tree reconstruction -------------------------------------

TEST(TreeRecrash, InterruptedReconstructionIsIdempotent)
{
    // Counter-fault-dosed crash-during-recovery sweep with the tree
    // armed. Counter faults break the persisted root, and the
    // rollback flavor is window-repairable, so reference recoveries
    // that survive the quarantine gate reach the tree reconstruction
    // — putting TreeRebuildLeaf interruption points into the plan. An
    // interrupted-then-rerun reconstruction must then converge to the
    // uninterrupted reference at every point.
    FaultSpec dose;
    dose.counterFaults = 2;
    dose.seed = 1;

    RecoveryCrashOptions opt;
    opt.points = 12;
    opt.images = 6;
    opt.recoveryJobs = 2;
    opt.faults = dose;
    RecoveryCrashResult r =
        runRecoveryCrashSweep(treeConfig(DesignPoint::SCA), opt);

    EXPECT_GT(r.firedPoints(), 0u);
    EXPECT_EQ(r.divergentPoints(), 0u);
    EXPECT_NE(r.fingerprint().find("treeleaf"), std::string::npos)
        << r.fingerprint();
}

} // anonymous namespace
} // namespace cnvm
