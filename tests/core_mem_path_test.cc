/**
 * @file
 * Unit tests for the per-core L1/L2 path, using a scriptable fake
 * memory backend: hit/miss latencies, write-allocate stores, clwb
 * acceptance, eviction writebacks, inclusion, and backpressure.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>

#include "mem/core_mem_path.hh"
#include "sim/one_shot.hh"

namespace cnvm
{
namespace
{

/** Backend with fixed read latency and scriptable write acceptance. */
class FakeBackend : public MemBackend
{
  public:
    explicit FakeBackend(EventQueue &eq) : eq(eq) {}

    void
    issueRead(Addr addr, unsigned, ReadCallback done) override
    {
        ++reads;
        lastReadAddr = addr;
        scheduleAfter(eq, readLatency, std::move(done));
    }

    bool
    tryWrite(const WriteReq &req) override
    {
        if (refuseWrites) {
            ++refusals;
            return false;
        }
        writes.push_back(req);
        if (req.accepted)
            scheduleAfter(eq, acceptLatency, req.accepted);
        return true;
    }

    bool
    tryCtrWriteback(Addr addr, std::function<void()> accepted) override
    {
        if (refuseWrites) {
            ++refusals;
            return false;
        }
        ctrwbs.push_back(addr);
        if (accepted)
            scheduleAfter(eq, acceptLatency, accepted);
        return true;
    }

    void
    registerRetry(std::function<void()> retry) override
    {
        retries.push_back(std::move(retry));
    }

    void
    fireRetries()
    {
        auto pending = std::move(retries);
        retries.clear();
        for (auto &cb : pending)
            cb();
    }

    LineData
    functionalRead(Addr addr) const override
    {
        auto it = mem.find(lineAlign(addr));
        return it == mem.end() ? LineData{} : it->second;
    }

    void
    functionalStore(Addr addr, unsigned size,
                    const std::uint8_t *bytes) override
    {
        Addr line = lineAlign(addr);
        std::memcpy(mem[line].data() + (addr - line), bytes, size);
    }

    EventQueue &eq;
    Tick readLatency = nsToTicks(70);
    Tick acceptLatency = nsToTicks(5);
    bool refuseWrites = false;
    unsigned reads = 0;
    unsigned refusals = 0;
    Addr lastReadAddr = 0;
    std::vector<WriteReq> writes;
    std::vector<Addr> ctrwbs;
    std::vector<std::function<void()>> retries;
    std::map<Addr, LineData> mem;
};

class CoreMemPathTest : public ::testing::Test
{
  protected:
    CoreMemPathTest()
        : backend(eq),
          path(eq, ClockDomain(250), backend, smallConfig(), 0, nullptr)
    {}

    static CachePathConfig
    smallConfig()
    {
        CachePathConfig cfg;
        cfg.l1Bytes = 1024;   // 16 lines
        cfg.l1Assoc = 2;
        cfg.l1Cycles = 4;
        cfg.l2Bytes = 4096;   // 64 lines
        cfg.l2Assoc = 4;
        cfg.l2Cycles = 20;
        return cfg;
    }

    /** Runs a load and returns its completion latency in ticks. */
    Tick
    loadLatency(Addr addr)
    {
        Tick start = eq.curTick();
        Tick done = 0;
        path.load(addr, [&]() { done = eq.curTick(); });
        eq.run();
        return done - start;
    }

    void
    storeNow(Addr addr, std::uint64_t value, bool ca = false)
    {
        path.store(addr, sizeof(value),
                   reinterpret_cast<const std::uint8_t *>(&value), ca,
                   []() {});
        eq.run();
    }

    EventQueue eq;
    FakeBackend backend;
    CoreMemPath path;
};

TEST_F(CoreMemPathTest, ColdLoadGoesToMemory)
{
    Tick lat = loadLatency(0x10000);
    EXPECT_EQ(backend.reads, 1u);
    EXPECT_EQ(backend.lastReadAddr, 0x10000u);
    // l1 (4cy) + l2 (20cy) at 250 ps + 70 ns memory.
    EXPECT_EQ(lat, 24 * 250 + nsToTicks(70));
}

TEST_F(CoreMemPathTest, SecondLoadHitsL1)
{
    loadLatency(0x10000);
    Tick lat = loadLatency(0x10000);
    EXPECT_EQ(backend.reads, 1u); // no new memory read
    EXPECT_EQ(lat, 4 * 250u);
}

TEST_F(CoreMemPathTest, LoadReturnsFunctionalData)
{
    backend.mem[0x10000].fill(0x5a);
    bool checked = false;
    path.load(0x10000, [&]() {
        EXPECT_EQ(path.functionalRead(0x10000)[0], 0x5a);
        checked = true;
    });
    eq.run();
    EXPECT_TRUE(checked);
}

TEST_F(CoreMemPathTest, StoreMissWriteAllocates)
{
    storeNow(0x20000, 0x1122334455667788ull);
    EXPECT_EQ(backend.reads, 1u); // fill for ownership
    LineData line = path.functionalRead(0x20000);
    std::uint64_t v;
    std::memcpy(&v, line.data(), 8);
    EXPECT_EQ(v, 0x1122334455667788ull);
}

TEST_F(CoreMemPathTest, StoreUpdatesLiveView)
{
    storeNow(0x20008, 42);
    EXPECT_EQ(backend.functionalRead(0x20000)[8], 42);
}

TEST_F(CoreMemPathTest, StoreHitIsFast)
{
    storeNow(0x20000, 1);
    Tick start = eq.curTick();
    Tick done = 0;
    std::uint64_t v = 2;
    path.store(0x20000, 8, reinterpret_cast<std::uint8_t *>(&v), false,
               [&]() { done = eq.curTick(); });
    eq.run();
    EXPECT_EQ(done - start, 4 * 250u);
    EXPECT_EQ(backend.reads, 1u);
}

TEST_F(CoreMemPathTest, ClwbCleanLineCompletesWithoutWrite)
{
    loadLatency(0x10000);
    bool done = false;
    path.clwb(0x10000, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(backend.writes.empty());
}

TEST_F(CoreMemPathTest, ClwbDirtyLineWritesNewestData)
{
    storeNow(0x20000, 7);
    bool done = false;
    path.clwb(0x20000, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(backend.writes.size(), 1u);
    EXPECT_EQ(backend.writes[0].addr, 0x20000u);
    std::uint64_t v;
    std::memcpy(&v, backend.writes[0].data.data(), 8);
    EXPECT_EQ(v, 7u);
    EXPECT_FALSE(backend.writes[0].counterAtomic);
}

TEST_F(CoreMemPathTest, ClwbRetainsLineReadable)
{
    storeNow(0x20000, 7);
    path.clwb(0x20000, []() {});
    eq.run();
    // Line still present: a load hits without a memory read.
    unsigned reads_before = backend.reads;
    loadLatency(0x20000);
    EXPECT_EQ(backend.reads, reads_before);
}

TEST_F(CoreMemPathTest, SecondClwbWithoutNewStoreIsFree)
{
    storeNow(0x20000, 7);
    path.clwb(0x20000, []() {});
    eq.run();
    path.clwb(0x20000, []() {});
    eq.run();
    EXPECT_EQ(backend.writes.size(), 1u);
}

TEST_F(CoreMemPathTest, CounterAtomicAnnotationTravelsToWriteback)
{
    storeNow(0x20000, 7, /*ca=*/true);
    path.clwb(0x20000, []() {});
    eq.run();
    ASSERT_EQ(backend.writes.size(), 1u);
    EXPECT_TRUE(backend.writes[0].counterAtomic);

    // The annotation is consumed by the writeback: a later plain store
    // plus clwb is not counter-atomic.
    storeNow(0x20000, 8, /*ca=*/false);
    path.clwb(0x20000, []() {});
    eq.run();
    ASSERT_EQ(backend.writes.size(), 2u);
    EXPECT_FALSE(backend.writes[1].counterAtomic);
}

TEST_F(CoreMemPathTest, CtrwbForwardsCounterLine)
{
    bool done = false;
    path.ctrwb(0x12345, [&]() { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    ASSERT_EQ(backend.ctrwbs.size(), 1u);
    EXPECT_EQ(backend.ctrwbs[0], lineAlign(0x12345));
}

TEST_F(CoreMemPathTest, DirtyEvictionWritesBack)
{
    // Dirty more lines than the hierarchy can hold: evictions must
    // write back and no data may be lost.
    const unsigned lines = 200; // > 64 L2 lines
    for (unsigned i = 0; i < lines; ++i)
        storeNow(0x40000 + i * lineBytes, i + 1);
    EXPECT_FALSE(backend.writes.empty());
    // Every line's newest value is readable through the path.
    for (unsigned i = 0; i < lines; ++i) {
        LineData line = path.functionalRead(0x40000 + i * lineBytes);
        std::uint64_t v;
        std::memcpy(&v, line.data(), 8);
        ASSERT_EQ(v, i + 1) << "line " << i;
    }
}

TEST_F(CoreMemPathTest, BackpressureRetriesInOrder)
{
    backend.refuseWrites = true;
    storeNow(0x20000, 1);
    storeNow(0x20040, 2);
    bool first_done = false, second_done = false;
    path.clwb(0x20000, [&]() { first_done = true; });
    path.clwb(0x20040, [&]() { second_done = true; });
    eq.run();
    EXPECT_FALSE(first_done);
    EXPECT_FALSE(second_done);
    EXPECT_GT(backend.refusals, 0u);

    backend.refuseWrites = false;
    backend.fireRetries();
    eq.run();
    EXPECT_TRUE(first_done);
    EXPECT_TRUE(second_done);
    ASSERT_EQ(backend.writes.size(), 2u);
    // FIFO: the first clwb's line lands first.
    EXPECT_EQ(backend.writes[0].addr, 0x20000u);
    EXPECT_EQ(backend.writes[1].addr, 0x20040u);
}

TEST_F(CoreMemPathTest, DropAllLosesDirtyData)
{
    storeNow(0x20000, 1);
    path.dropAll();
    unsigned reads_before = backend.reads;
    loadLatency(0x20000);
    EXPECT_EQ(backend.reads, reads_before + 1); // had to re-fetch
    EXPECT_TRUE(backend.writes.empty());        // nothing written back
}

TEST_F(CoreMemPathTest, StatsCountHitsAndMisses)
{
    stats::StatRegistry reg;
    CoreMemPath p2(eq, ClockDomain(250), backend, smallConfig(), 3, &reg);
    bool done = false;
    p2.load(0x90000, [&]() { done = true; });
    eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(reg.lookup("core3.mem.l1_misses"), 1.0);
    EXPECT_EQ(reg.lookup("core3.mem.l2_misses"), 1.0);
    p2.load(0x90000, []() {});
    eq.run();
    EXPECT_EQ(reg.lookup("core3.mem.l1_hits"), 1.0);
}

} // anonymous namespace
} // namespace cnvm
