/**
 * @file
 * Tests for the crash-point sweep harness: the countdown trigger, the
 * injector's crash specs, the sweep planner, and a small end-to-end
 * sweep over every design point, classified by the crash oracle.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/crash_sweep.hh"
#include "sim/trigger.hh"

namespace cnvm
{
namespace
{

// --- CountdownTrigger -----------------------------------------------------

TEST(CountdownTrigger, FiresExactlyAtNth)
{
    CountdownTrigger t;
    unsigned fired = 0;
    t.arm(3, [&]() { ++fired; });
    t.observe();
    t.observe();
    EXPECT_EQ(fired, 0u);
    EXPECT_TRUE(t.armed());
    t.observe();
    EXPECT_EQ(fired, 1u);
    EXPECT_TRUE(t.fired());
    t.observe(); // further observations are ignored
    EXPECT_EQ(fired, 1u);
}

TEST(CountdownTrigger, DisarmPreventsFiring)
{
    CountdownTrigger t;
    bool fired = false;
    t.arm(1, [&]() { fired = true; });
    t.disarm();
    t.observe();
    EXPECT_FALSE(fired);
    EXPECT_FALSE(t.fired());
}

TEST(CountdownTrigger, CallbackMayRearm)
{
    CountdownTrigger t;
    unsigned fired = 0;
    t.arm(1, [&]() {
        if (++fired < 2)
            t.arm(2, [&]() { ++fired; });
    });
    t.observe(); // fires #1, re-arms for two more
    t.observe();
    EXPECT_EQ(fired, 1u);
    t.observe();
    EXPECT_EQ(fired, 2u);
}

// --- CrashSpec ------------------------------------------------------------

TEST(CrashSpec, DescribeNamesTickAndEvent)
{
    EXPECT_EQ(CrashSpec::atTick(1234).describe(), "tick 1234");
    EXPECT_EQ(
        CrashSpec::atEvent(CrashTriggerKind::DirtyEviction, 7).describe(),
        "dirty-eviction #7");
    EXPECT_FALSE(ctlEventFor(CrashTriggerKind::AtTick).has_value());
    EXPECT_EQ(ctlEventFor(CrashTriggerKind::PairAction),
              CtlEvent::PairAction);
}

// --- planSweep ------------------------------------------------------------

SweepProbe
fakeProbe()
{
    SweepProbe probe;
    probe.endTick = 1000000;
    probe.eventCounts[static_cast<unsigned>(CtlEvent::PipelineEnter)] = 40;
    probe.eventCounts[static_cast<unsigned>(CtlEvent::DataDrain)] = 40;
    probe.eventCounts[static_cast<unsigned>(CtlEvent::CtrDrain)] = 10;
    // PairAction and DirtyEviction never observed.
    return probe;
}

TEST(PlanSweep, ProducesExactlyKPointsOverReachableKinds)
{
    auto specs = planSweep(fakeProbe(), 12);
    ASSERT_EQ(specs.size(), 12u);
    bool saw_unreachable = false;
    for (const CrashSpec &s : specs) {
        if (s.kind == CrashTriggerKind::PairAction
            || s.kind == CrashTriggerKind::DirtyEviction)
            saw_unreachable = true;
        if (s.kind == CrashTriggerKind::AtTick) {
            EXPECT_GT(s.tick, 0u);
            EXPECT_LT(s.tick, fakeProbe().endTick);
        } else {
            EXPECT_GE(s.count, 1u);
            EXPECT_LE(s.count, 40u);
        }
    }
    EXPECT_FALSE(saw_unreachable)
        << "planned a trigger the probe never observed";
}

TEST(PlanSweep, IsDeterministic)
{
    auto a = planSweep(fakeProbe(), 20);
    auto b = planSweep(fakeProbe(), 20);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].describe(), b[i].describe());
}

TEST(PlanSweep, TicksOnlyModeUsesNoSemanticTriggers)
{
    auto specs = planSweep(fakeProbe(), 8, /*semantic_triggers=*/false);
    ASSERT_EQ(specs.size(), 8u);
    for (const CrashSpec &s : specs)
        EXPECT_EQ(s.kind, CrashTriggerKind::AtTick);
}

// --- end-to-end sweeps ----------------------------------------------------

SystemConfig
smallConfig(DesignPoint design)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = 25;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    // Small counter cache: dirty evictions become reachable crash
    // states for the cached designs.
    cfg.memctl.counterCacheBytes = 16 << 10;
    return cfg;
}

class DesignSweep : public ::testing::TestWithParam<DesignPoint>
{};

TEST_P(DesignSweep, SmallSweepMatchesDesignGuarantee)
{
    SweepResult result = runSweep(smallConfig(GetParam()), 7);
    ASSERT_EQ(result.points.size(), 7u);
    if (designCrashConsistent(GetParam())) {
        for (const SweepPoint &p : result.points) {
            EXPECT_TRUE(!p.crashed || p.cls == CrashClass::Consistent)
                << p.spec.describe() << " -> " << crashClassName(p.cls)
                << ": " << p.detail;
        }
    } else {
        // The negative control: some crash point must exhibit the
        // paper's counter/data divergence.
        EXPECT_GE(result.mismatchPoints(), 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignSweep,
                         ::testing::ValuesIn(allDesignPoints()),
                         [](const auto &info) {
                             std::string n = designName(info.param);
                             for (char &c : n)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

TEST(CrashSweepEndToEnd, FingerprintIsDeterministic)
{
    SystemConfig cfg = smallConfig(DesignPoint::Unsafe);
    SweepResult a = runSweep(cfg, 6);
    SweepResult b = runSweep(cfg, 6);
    EXPECT_FALSE(a.fingerprint().empty());
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(CrashSweepEndToEnd, ParallelExecuteIsByteIdenticalToSerial)
{
    // The work-pool Execute phase must be invisible in the results:
    // sweep fingerprints and every point's full stats dump must be
    // byte-identical across --jobs 1/2/8 for each design.
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        SystemConfig cfg = smallConfig(d);

        std::string fingerprints[3];
        std::string stats[3];
        const unsigned jobs_values[3] = {1, 2, 8};
        for (int i = 0; i < 3; ++i) {
            SweepOptions opt;
            opt.points = 6;
            opt.jobs = jobs_values[i];
            opt.collectStatsDumps = true;
            SweepResult result = runSweep(cfg, opt);
            fingerprints[i] = result.fingerprint();
            for (const SweepPoint &p : result.points) {
                EXPECT_FALSE(p.statsDump.empty());
                stats[i] += p.statsDump;
            }
        }
        EXPECT_FALSE(fingerprints[0].empty()) << designName(d);
        EXPECT_EQ(fingerprints[0], fingerprints[1]) << designName(d);
        EXPECT_EQ(fingerprints[0], fingerprints[2]) << designName(d);
        EXPECT_EQ(stats[0], stats[1]) << designName(d);
        EXPECT_EQ(stats[0], stats[2]) << designName(d);
    }
}

TEST(CrashSweepEndToEnd, ExternalPoolMatchesInternalPool)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    SweepOptions opt;
    opt.points = 6;
    opt.jobs = 4;
    std::string internal = runSweep(cfg, opt).fingerprint();

    WorkPool pool(4);
    // The same pool drives two sweeps in a row (reuse across designs,
    // as the CLI tools do).
    std::string first = runSweep(cfg, opt, &pool).fingerprint();
    std::string second = runSweep(cfg, opt, &pool).fingerprint();
    EXPECT_EQ(internal, first);
    EXPECT_EQ(first, second);
}

TEST(CrashSweepEndToEnd, UnsafeFailsAsTornCounter)
{
    // The Unsafe design's signature: the data drains, its deferred
    // counter update dies dirty in the volatile counter cache, so the
    // persisted counter lags the cipher's — torn-counter, the paper's
    // Figure 4 failure.
    SweepResult result = runSweep(smallConfig(DesignPoint::Unsafe), 10);
    bool saw_torn_counter = false;
    for (const SweepPoint &p : result.points) {
        if (!p.crashed || p.cls == CrashClass::Consistent)
            continue;
        EXPECT_TRUE(isCounterDataMismatch(p.cls))
            << p.spec.describe() << " -> " << crashClassName(p.cls);
        EXPECT_GT(p.mismatchedLines, 0u);
        saw_torn_counter |= p.cls == CrashClass::TornCounter
            || p.cls == CrashClass::CounterDataMismatch;
    }
    EXPECT_TRUE(saw_torn_counter);
}

TEST(CrashSweepEndToEnd, PipelineTriggerCrashesMidPipeline)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    SweepProbe probe = probeRun(cfg);
    std::uint64_t total = probe.countOf(CtlEvent::PipelineEnter);
    ASSERT_GT(total, 0u);

    SweepPoint point = runSweepPoint(
        cfg, CrashSpec::atEvent(CrashTriggerKind::PipelineEnter,
                                total / 2));
    ASSERT_TRUE(point.crashed);
    EXPECT_GE(point.snapshot.pipeline, 1u)
        << "the trigger should catch the write inside the pipeline";
    EXPECT_EQ(point.cls, CrashClass::Consistent) << point.detail;
}

TEST(CrashSweepEndToEnd, UnreachedTriggerMeansNoCrash)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    SweepPoint point = runSweepPoint(
        cfg, CrashSpec::atEvent(CrashTriggerKind::PairAction, 1u << 30));
    EXPECT_FALSE(point.crashed);
    EXPECT_FALSE(point.snapshot.valid);
    EXPECT_EQ(point.cls, CrashClass::Consistent);
}

// --- fork-based Execute ---------------------------------------------------

TEST(ForkSweep, ForkMatchesReplayFingerprintAllDesigns)
{
    // The tentpole contract: mode=Fork classifies from captured
    // persistent-state forks of one trunk run, yet its fingerprint is
    // byte-identical to the K-replay reference — for every design,
    // serial and pipelined alike.
    for (DesignPoint d : {DesignPoint::ColocatedCC, DesignPoint::FCA,
                          DesignPoint::SCA, DesignPoint::Unsafe}) {
        SystemConfig cfg = smallConfig(d);

        SweepOptions replay;
        replay.points = 8;
        std::string reference = runSweep(cfg, replay).fingerprint();
        ASSERT_FALSE(reference.empty()) << designName(d);

        for (unsigned jobs : {1u, 4u}) {
            SweepOptions fork;
            fork.points = 8;
            fork.mode = SweepMode::Fork;
            fork.jobs = jobs;
            EXPECT_EQ(runSweep(cfg, fork).fingerprint(), reference)
                << designName(d) << " jobs=" << jobs;
        }
    }
}

TEST(ForkSweep, CaptureDoesNotPerturbTrunk)
{
    // Arming K capture-only triggers must be invisible to the trunk:
    // same end tick and a byte-identical full stats dump as an unarmed
    // run of the same configuration. That must hold even when every
    // captured fork gets a media-fault dose — the faults land on the
    // fork's image copy, never the trunk's device.
    SystemConfig cfg = smallConfig(DesignPoint::SCA);

    System plain(cfg);
    RunResult plain_result = plain.run();
    std::ostringstream plain_stats;
    plain.statsRegistry().dump(plain_stats);

    SweepProbe probe = probeRun(cfg);
    for (bool with_faults : {false, true}) {
        std::vector<CrashSpec> plan = planSweep(probe, 9);
        if (with_faults) {
            FaultSpec dose = FaultSpec::allKinds(7);
            for (std::size_t i = 0; i < plan.size(); ++i)
                plan[i].faults = dose.forPoint(i);
        }
        unsigned captured = 0;
        std::uint64_t faulted = 0;
        System trunk(cfg);
        RunResult trunk_result = trunk.runWithForkCapture(
            plan, [&](std::size_t, PersistFork fork) {
                ++captured;
                faulted += fork.image.faultedLineCount();
            });
        std::ostringstream trunk_stats;
        trunk.statsRegistry().dump(trunk_stats);

        EXPECT_GT(captured, 0u);
        if (with_faults)
            EXPECT_GT(faulted, 0u) << "the dose never landed";
        EXPECT_FALSE(trunk_result.crashed);
        EXPECT_EQ(trunk_result.endTick, plain_result.endTick)
            << "faults=" << with_faults;
        EXPECT_EQ(trunk_result.txnsIssued, plain_result.txnsIssued)
            << "faults=" << with_faults;
        EXPECT_EQ(trunk_stats.str(), plain_stats.str())
            << "faults=" << with_faults;
        EXPECT_EQ(trunk.nvm().persistedState().faultedLineCount(), 0u)
            << "a fault leaked onto the trunk's own image";
    }
}

TEST(ForkSweep, MultiSpecArmingFiresEachSpecOnceAtItsReplayTick)
{
    SystemConfig cfg = smallConfig(DesignPoint::ColocatedCC);
    SweepProbe probe = probeRun(cfg);
    ASSERT_GT(probe.countOf(CtlEvent::DataDrain), 4u);
    ASSERT_GT(probe.countOf(CtlEvent::PipelineEnter), 2u);

    // Two semantic specs and one absolute tick, all armed on one run.
    std::vector<CrashSpec> plan{
        CrashSpec::atEvent(CrashTriggerKind::DataDrain, 5),
        CrashSpec::atEvent(CrashTriggerKind::PipelineEnter, 3),
        CrashSpec::atTick(probe.endTick / 2),
    };

    std::vector<unsigned> fires(plan.size(), 0);
    std::vector<Tick> forkTicks(plan.size(), 0);
    System trunk(cfg);
    trunk.runWithForkCapture(plan,
                             [&](std::size_t i, PersistFork fork) {
                                 ++fires.at(i);
                                 forkTicks.at(i) = fork.snapshot.tick;
                                 EXPECT_EQ(fork.planIndex, i);
                             });

    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(fires[i], 1u) << plan[i].describe();
        // Each fork was captured at exactly the tick a dedicated
        // replay run crashes at for the same spec.
        SweepPoint replay = runSweepPoint(cfg, plan[i]);
        ASSERT_TRUE(replay.crashed) << plan[i].describe();
        EXPECT_EQ(forkTicks[i], replay.snapshot.tick)
            << plan[i].describe();
    }
}

TEST(ForkSweep, PersistForkIsADeepCopy)
{
    // Mutating the trunk after capture (it keeps simulating, and here
    // we corrupt its device outright) must not change the fork's
    // classification.
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    SweepProbe probe = probeRun(cfg);
    CrashSpec spec =
        CrashSpec::atEvent(CrashTriggerKind::DataDrain,
                           probe.countOf(CtlEvent::DataDrain) / 2);

    std::vector<PersistFork> forks;
    System trunk(cfg);
    trunk.runWithForkCapture({spec},
                             [&](std::size_t, PersistFork fork) {
                                 forks.push_back(std::move(fork));
                             });
    ASSERT_EQ(forks.size(), 1u);

    SweepPoint before = classifyFork(trunk, spec, forks[0]);
    ASSERT_TRUE(before.crashed);

    // Corrupt every persisted line of core 0's region on the trunk.
    const Workload &wl = trunk.workload(0);
    LineData garbage;
    garbage.fill(0xa5);
    for (Addr a = wl.regionBase(); a < wl.regionEnd(); a += lineBytes)
        trunk.nvm().persistedState().drainData(a, garbage, 0xdeadbeef);

    SweepPoint after = classifyFork(trunk, spec, forks[0]);
    EXPECT_EQ(after.cls, before.cls);
    EXPECT_EQ(after.detail, before.detail);
    EXPECT_EQ(after.mismatchedLines, before.mismatchedLines);
    EXPECT_EQ(after.committedTxns, before.committedTxns);
    EXPECT_EQ(after.snapshot.tick, before.snapshot.tick);
}

} // anonymous namespace
} // namespace cnvm
