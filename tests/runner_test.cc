/**
 * @file
 * Unit tests for the WorkPool runner: deterministic in-order result
 * collection, exception propagation out of workers, and pool reuse
 * across batches.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "runner/runner.hh"

namespace cnvm
{
namespace
{

TEST(WorkPool, HardwareJobsIsPositive)
{
    EXPECT_GE(WorkPool::hardwareJobs(), 1u);
    WorkPool dflt;
    EXPECT_EQ(dflt.jobs(), WorkPool::hardwareJobs());
    WorkPool one(1);
    EXPECT_EQ(one.jobs(), 1u);
}

TEST(WorkPool, EmptyBatchIsANoop)
{
    WorkPool pool(4);
    unsigned calls = 0;
    pool.forEachIndex(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0u);
}

TEST(WorkPool, RunsEveryIndexExactlyOnce)
{
    WorkPool pool(4);
    constexpr std::size_t n = 200;
    std::vector<std::atomic<unsigned>> hits(n);
    pool.forEachIndex(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(WorkPool, MapCollectsResultsInIndexOrder)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        WorkPool pool(jobs);
        // Early indices sleep longest, so with several workers the
        // *completion* order inverts the index order; collection must
        // still come back in index order.
        auto out = pool.map<std::size_t>(16, [](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::microseconds((16 - i) * 100));
            return i * i;
        });
        ASSERT_EQ(out.size(), 16u) << "jobs=" << jobs;
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i) << "jobs=" << jobs;
    }
}

TEST(WorkPool, PropagatesWorkerException)
{
    WorkPool pool(4);
    EXPECT_THROW(
        pool.forEachIndex(32,
                          [](std::size_t i) {
                              if (i == 7)
                                  throw std::runtime_error("boom 7");
                          }),
        std::runtime_error);
}

TEST(WorkPool, RethrowsLowestFailedIndex)
{
    for (unsigned jobs : {1u, 4u}) {
        WorkPool pool(jobs);
        try {
            pool.forEachIndex(32, [](std::size_t i) {
                if (i == 3 || i == 20)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "no exception propagated (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 3") << "jobs=" << jobs;
        }
    }
}

TEST(WorkPool, ExceptionStopsNewClaims)
{
    WorkPool pool(2);
    std::atomic<std::size_t> started{0};
    try {
        pool.forEachIndex(1000, [&](std::size_t) {
            ++started;
            throw std::runtime_error("immediate");
        });
        FAIL() << "no exception propagated";
    } catch (const std::runtime_error &) {
    }
    // The claim cursor freezes on the first error; only tasks already
    // in flight (at most one per job) can have started.
    EXPECT_LE(started.load(), 2u + 1u);
}

TEST(WorkPool, PoolIsReusableAcrossBatches)
{
    WorkPool pool(4);
    for (unsigned round = 0; round < 5; ++round) {
        auto out = pool.map<unsigned>(
            64, [&](std::size_t i) {
                return round * 1000 + static_cast<unsigned>(i);
            });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], round * 1000 + i) << "round " << round;
    }
}

TEST(WorkPool, ReusableAfterAFailedBatch)
{
    WorkPool pool(4);
    EXPECT_THROW(pool.forEachIndex(
                     8, [](std::size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
    auto out = pool.map<int>(8, [](std::size_t i) {
        return static_cast<int>(i) + 1;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 1);
}

TEST(WorkPool, SerialPoolRunsInIndexOrder)
{
    WorkPool pool(1);
    std::vector<std::size_t> order;
    pool.forEachIndex(10, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(WorkPool, ManyMoreTasksThanWorkers)
{
    WorkPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    pool.forEachIndex(10000, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2);
}

// --- pipelined submit()/waitSubmitted() -----------------------------------

TEST(WorkPoolSubmit, RunsEverySubmittedTaskExactlyOnce)
{
    for (unsigned jobs : {1u, 4u}) {
        WorkPool pool(jobs);
        constexpr std::size_t n = 200;
        std::vector<std::atomic<unsigned>> hits(n);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&hits, i]() { ++hits[i]; });
        pool.waitSubmitted();
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1u)
                << "jobs=" << jobs << " index " << i;
    }
}

TEST(WorkPoolSubmit, WorkersDrainWhileOwnerProduces)
{
    // The point of the pipelined mode: tasks submitted early complete
    // while the owner is still producing later ones. With one worker
    // dedicated to draining, all tasks must be done by the time the
    // slow producer calls waitSubmitted().
    WorkPool pool(4);
    std::atomic<unsigned> done{0};
    for (unsigned i = 0; i < 8; ++i) {
        pool.submit([&done]() { ++done; });
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    pool.waitSubmitted();
    EXPECT_EQ(done.load(), 8u);
}

TEST(WorkPoolSubmit, RethrowsEarliestSubmittedFailure)
{
    for (unsigned jobs : {1u, 4u}) {
        WorkPool pool(jobs);
        std::atomic<unsigned> ran{0};
        for (unsigned i = 0; i < 16; ++i) {
            pool.submit([&ran, i]() {
                ++ran;
                if (i == 3 || i == 12)
                    throw std::runtime_error("boom "
                                             + std::to_string(i));
            });
        }
        try {
            pool.waitSubmitted();
            FAIL() << "no exception propagated (jobs=" << jobs << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 3") << "jobs=" << jobs;
        }
        // Unlike batch mode, submitted tasks are independent: a
        // failure cancels nothing.
        EXPECT_EQ(ran.load(), 16u) << "jobs=" << jobs;
    }
}

TEST(WorkPoolSubmit, CycleIsReusableAndAfterFailure)
{
    WorkPool pool(4);
    for (unsigned round = 0; round < 3; ++round) {
        std::atomic<unsigned> done{0};
        for (unsigned i = 0; i < 32; ++i)
            pool.submit([&done]() { ++done; });
        pool.waitSubmitted();
        EXPECT_EQ(done.load(), 32u) << "round " << round;
    }

    pool.submit([]() { throw std::logic_error("x"); });
    EXPECT_THROW(pool.waitSubmitted(), std::logic_error);

    std::atomic<unsigned> after{0};
    for (unsigned i = 0; i < 8; ++i)
        pool.submit([&after]() { ++after; });
    pool.waitSubmitted();
    EXPECT_EQ(after.load(), 8u);
}

TEST(WorkPoolSubmit, MixesWithBatchCycles)
{
    // The sweep CLI reuses one pool across designs, alternating
    // fork-mode (submit) and replay-mode (map) executions.
    WorkPool pool(4);
    std::atomic<unsigned> submitted{0};
    for (unsigned i = 0; i < 16; ++i)
        pool.submit([&submitted]() { ++submitted; });
    pool.waitSubmitted();
    EXPECT_EQ(submitted.load(), 16u);

    auto out = pool.map<int>(8, [](std::size_t i) {
        return static_cast<int>(i) * 2;
    });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 2);

    std::atomic<unsigned> again{0};
    for (unsigned i = 0; i < 16; ++i)
        pool.submit([&again]() { ++again; });
    pool.waitSubmitted();
    EXPECT_EQ(again.load(), 16u);
}

TEST(WorkPoolSubmit, WaitWithNothingSubmittedIsANoop)
{
    WorkPool pool(4);
    pool.waitSubmitted();
    WorkPool serial(1);
    serial.waitSubmitted();
}

} // anonymous namespace
} // namespace cnvm
