/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * rescheduling, run limits, and the clock/one-shot helpers.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/clocked.hh"
#include "sim/eventq.hh"
#include "sim/one_shot.hh"

namespace cnvm
{
namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<std::string> &log, std::string tag,
                   int priority = DefaultPriority)
        : Event(tag, priority), log(log), tag(std::move(tag))
    {}

    void process() override { log.push_back(tag); }

  private:
    std::vector<std::string> &log;
    std::string tag;
};

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b"), c(log, "c");
    eq.schedule(c, 300);
    eq.schedule(a, 100);
    eq.schedule(b, 200);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickFifoByInsertion)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b"), c(log, "c");
    eq.schedule(a, 50);
    eq.schedule(b, 50);
    eq.schedule(c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent low(log, "low", Event::MaxPriority);
    RecordingEvent high(log, "high", Event::MinPriority);
    eq.schedule(low, 10);
    eq.schedule(high, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"high", "low"}));
}

TEST(EventQueue, ScheduledFlagTracksState)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a");
    EXPECT_FALSE(a.scheduled());
    eq.schedule(a, 5);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 5u);
    eq.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    eq.deschedule(a);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST(EventQueue, Reschedule)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    eq.reschedule(a, 30); // moves a after b
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
}

TEST(EventQueue, RescheduleUnscheduledSchedules)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a");
    eq.reschedule(a, 15);
    eq.run();
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 100);
    eq.schedule(b, 200);
    eq.run(150);
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(EventQueue, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    scheduleAt(eq, 10, [&]() {
        ticks.push_back(eq.curTick());
        scheduleAt(eq, 25, [&]() { ticks.push_back(eq.curTick()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 25}));
}

TEST(EventQueue, SameTickFollowupRunsAfterCurrent)
{
    EventQueue eq;
    std::vector<int> order;
    scheduleAt(eq, 10, [&]() {
        order.push_back(1);
        scheduleAt(eq, 10, [&]() { order.push_back(3); });
        order.push_back(2);
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RequestStopEndsRun)
{
    EventQueue eq;
    int ran = 0;
    scheduleAt(eq, 10, [&]() {
        ++ran;
        eq.requestStop();
    });
    scheduleAt(eq, 20, [&]() { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 1);
    eq.run(); // resumes
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, ProcessedCount)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        scheduleAt(eq, 10 * (i + 1), []() {});
    eq.run();
    EXPECT_EQ(eq.processedCount(), 5u);
}

TEST(EventQueue, DestructorDeschedulesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    {
        RecordingEvent a(log, "a");
        eq.schedule(a, 10);
        // a destroyed while scheduled: must not be processed.
    }
    eq.run();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, ScheduleAfterUsesCurrentTick)
{
    EventQueue eq;
    Tick observed = 0;
    scheduleAt(eq, 100, [&]() {
        scheduleAfter(eq, 50, [&]() { observed = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(observed, 150u);
}

TEST(ClockDomain, Conversions)
{
    ClockDomain cpu(250); // 4 GHz
    EXPECT_EQ(cpu.periodTicks(), 250u);
    EXPECT_EQ(cpu.cyclesToTicks(4), 1000u);
    EXPECT_EQ(cpu.ticksToCycles(1000), 4u);
    EXPECT_EQ(cpu.ticksToCycles(1001), 5u); // rounds up
}

TEST(ClockDomain, FromMHz)
{
    ClockDomain mem = ClockDomain::fromMHz(1000);
    EXPECT_EQ(mem.periodTicks(), 1000u);
}

TEST(Clocked, ClockEdgeAligned)
{
    EventQueue eq;
    Clocked clocked(eq, ClockDomain(250));
    EXPECT_EQ(clocked.clockEdge(), 0u);
    EXPECT_EQ(clocked.clockEdge(2), 500u);

    Tick edge = 0;
    scheduleAt(eq, 130, [&]() { edge = clocked.clockEdge(); });
    eq.run();
    EXPECT_EQ(edge, 250u); // next edge after tick 130
}

} // anonymous namespace
} // namespace cnvm
