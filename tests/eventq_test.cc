/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * rescheduling, run limits, and the clock/one-shot helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/clocked.hh"
#include "sim/eventq.hh"
#include "sim/one_shot.hh"

namespace cnvm
{
namespace
{

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<std::string> &log, std::string tag,
                   int priority = DefaultPriority)
        : Event(tag, priority), log(log), tag(std::move(tag))
    {}

    void process() override { log.push_back(tag); }

  private:
    std::vector<std::string> &log;
    std::string tag;
};

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b"), c(log, "c");
    eq.schedule(c, 300);
    eq.schedule(a, 100);
    eq.schedule(b, 200);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickFifoByInsertion)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b"), c(log, "c");
    eq.schedule(a, 50);
    eq.schedule(b, 50);
    eq.schedule(c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent low(log, "low", Event::MaxPriority);
    RecordingEvent high(log, "high", Event::MinPriority);
    eq.schedule(low, 10);
    eq.schedule(high, 10);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"high", "low"}));
}

TEST(EventQueue, ScheduledFlagTracksState)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a");
    EXPECT_FALSE(a.scheduled());
    eq.schedule(a, 5);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 5u);
    eq.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    eq.deschedule(a);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST(EventQueue, Reschedule)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    eq.reschedule(a, 30); // moves a after b
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
}

TEST(EventQueue, RescheduleUnscheduledSchedules)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a");
    eq.reschedule(a, 15);
    eq.run();
    EXPECT_EQ(log.size(), 1u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 100);
    eq.schedule(b, 200);
    eq.run(150);
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_TRUE(b.scheduled());
    eq.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(EventQueue, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    scheduleAt(eq, 10, [&]() {
        ticks.push_back(eq.curTick());
        scheduleAt(eq, 25, [&]() { ticks.push_back(eq.curTick()); });
    });
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 25}));
}

TEST(EventQueue, SameTickFollowupRunsAfterCurrent)
{
    EventQueue eq;
    std::vector<int> order;
    scheduleAt(eq, 10, [&]() {
        order.push_back(1);
        scheduleAt(eq, 10, [&]() { order.push_back(3); });
        order.push_back(2);
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RequestStopEndsRun)
{
    EventQueue eq;
    int ran = 0;
    scheduleAt(eq, 10, [&]() {
        ++ran;
        eq.requestStop();
    });
    scheduleAt(eq, 20, [&]() { ++ran; });
    eq.run();
    EXPECT_EQ(ran, 1);
    eq.run(); // resumes
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, ProcessedCount)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        scheduleAt(eq, 10 * (i + 1), []() {});
    eq.run();
    EXPECT_EQ(eq.processedCount(), 5u);
}

TEST(EventQueue, DestructorDeschedulesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    {
        RecordingEvent a(log, "a");
        eq.schedule(a, 10);
        // a destroyed while scheduled: must not be processed.
    }
    eq.run();
    EXPECT_TRUE(log.empty());
}

// --- lazy-deletion heap internals ----------------------------------------

TEST(EventQueue, SizeExcludesDescheduledEntries)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a"), b(log, "b"), c(log, "c");
    eq.schedule(a, 10);
    eq.schedule(b, 20);
    eq.schedule(c, 30);
    EXPECT_EQ(eq.size(), 3u);
    eq.deschedule(b);
    // The heap slot is only lazily discarded, but size() must report
    // live events.
    EXPECT_EQ(eq.size(), 2u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "c"}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DescheduleThenDestroyThenReuseSlot)
{
    // The destroyed event's heap slot must never be dereferenced, even
    // when later schedules reuse and re-sift the heap around it.
    EventQueue eq;
    std::vector<std::string> log;
    auto victim = std::make_unique<RecordingEvent>(log, "victim");
    eq.schedule(*victim, 50);
    eq.deschedule(*victim);
    victim.reset();
    RecordingEvent a(log, "a"), b(log, "b");
    eq.schedule(a, 40); // sifts past the disowned slot
    eq.schedule(b, 60);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a", "b"}));
}

TEST(EventQueue, DescheduleThenRescheduleKeepsOneInstance)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a(log, "a");
    eq.schedule(a, 10);
    eq.deschedule(a);
    eq.schedule(a, 30);
    eq.deschedule(a);
    eq.schedule(a, 20);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueue, CompactionPreservesOrderUnderHeavyDeschedule)
{
    // Drive deschedule count past the compaction threshold and verify
    // the surviving events still fire in exact (tick, seq) order.
    EventQueue eq;
    std::vector<std::string> log;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 400; ++i) {
        events.push_back(std::make_unique<RecordingEvent>(
            log, std::to_string(i)));
        // Scatter ticks; collisions fall back to insertion order.
        eq.schedule(*events.back(), (i * 7919) % 97);
    }
    std::vector<std::string> expected;
    for (int i = 0; i < 400; ++i) {
        if (i % 4 != 0) {
            eq.deschedule(*events[i]);
        }
    }
    // Expected order: by (tick, insertion seq) over the survivors.
    std::vector<std::pair<std::pair<Tick, int>, std::string>> keyed;
    for (int i = 0; i < 400; i += 4)
        keyed.push_back({{(i * 7919) % 97, i}, std::to_string(i)});
    std::sort(keyed.begin(), keyed.end());
    for (auto &k : keyed)
        expected.push_back(k.second);
    eq.run();
    EXPECT_EQ(log, expected);
}

TEST(EventQueue, RandomizedAgainstReferenceModel)
{
    // Model check: random schedule/deschedule/reschedule/step traffic
    // against a sorted-vector reference holding the same (tick,
    // priority, seq) keys.
    struct Ref
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        int id;
        bool
        operator<(const Ref &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }
    };

    EventQueue eq;
    std::vector<int> fired;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    const int numEvents = 64;
    int priorities[3] = {Event::MinPriority, Event::DefaultPriority,
                         Event::MaxPriority};
    std::uint64_t rng = 12345;
    auto next_rand = [&rng]() {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };
    for (int i = 0; i < numEvents; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [&fired, i]() { fired.push_back(i); }, "e",
            priorities[i % 3]));
    }

    std::vector<Ref> model;
    std::vector<int> modelFired;
    std::uint64_t seq = 0;
    for (int round = 0; round < 2000; ++round) {
        int id = static_cast<int>(next_rand() % numEvents);
        Event &ev = *events[id];
        unsigned action = next_rand() % 4;
        if (action == 0 && !ev.scheduled()) {
            Tick when = eq.curTick() + next_rand() % 1000;
            eq.schedule(ev, when);
            model.push_back(Ref{when, ev.priority(), seq++, id});
        } else if (action == 1 && ev.scheduled()) {
            eq.deschedule(ev);
            model.erase(std::find_if(model.begin(), model.end(),
                [&](const Ref &r) { return r.id == id; }));
        } else if (action == 2) {
            Tick when = eq.curTick() + next_rand() % 1000;
            eq.reschedule(ev, when);
            auto it = std::find_if(model.begin(), model.end(),
                [&](const Ref &r) { return r.id == id; });
            if (it != model.end())
                model.erase(it);
            model.push_back(Ref{when, ev.priority(), seq++, id});
        } else if (action == 3 && !model.empty()) {
            auto it = std::min_element(model.begin(), model.end());
            modelFired.push_back(it->id);
            model.erase(it);
            ASSERT_TRUE(eq.step());
        }
        ASSERT_EQ(eq.size(), model.size()) << "round " << round;
    }
    eq.run();
    std::sort(model.begin(), model.end());
    for (const Ref &r : model)
        modelFired.push_back(r.id);
    EXPECT_EQ(fired, modelFired);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTick)
{
    EventQueue eq;
    Tick observed = 0;
    scheduleAt(eq, 100, [&]() {
        scheduleAfter(eq, 50, [&]() { observed = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(observed, 150u);
}

TEST(ClockDomain, Conversions)
{
    ClockDomain cpu(250); // 4 GHz
    EXPECT_EQ(cpu.periodTicks(), 250u);
    EXPECT_EQ(cpu.cyclesToTicks(4), 1000u);
    EXPECT_EQ(cpu.ticksToCycles(1000), 4u);
    EXPECT_EQ(cpu.ticksToCycles(1001), 5u); // rounds up
}

TEST(ClockDomain, FromMHz)
{
    ClockDomain mem = ClockDomain::fromMHz(1000);
    EXPECT_EQ(mem.periodTicks(), 1000u);
}

TEST(Clocked, ClockEdgeAligned)
{
    EventQueue eq;
    Clocked clocked(eq, ClockDomain(250));
    EXPECT_EQ(clocked.clockEdge(), 0u);
    EXPECT_EQ(clocked.clockEdge(2), 500u);

    Tick edge = 0;
    scheduleAt(eq, 130, [&]() { edge = clocked.clockEdge(); });
    eq.run();
    EXPECT_EQ(edge, 250u); // next edge after tick 130
}

} // anonymous namespace
} // namespace cnvm
