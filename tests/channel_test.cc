/**
 * @file
 * Multi-channel sharding tests: the interleave map, the shared persist
 * sequencer and the global ADR cut, cross-channel crash consistency,
 * fingerprint identity across channel counts x jobs x modes, and the
 * core-scaling bugfixes that ride along (explicit total counter-cache
 * capacity, the channel-sharded set index, the bank-stagger layout
 * guards).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/crash_sweep.hh"
#include "core/system.hh"
#include "mem/channel_map.hh"
#include "memctl/counter_cache.hh"
#include "memctl/persist_sequencer.hh"

namespace cnvm
{
namespace
{

constexpr Addr kCtrBase = Addr(1) << 33;

SystemConfig
channelConfig(unsigned channels, unsigned cores = 2, unsigned txns = 30)
{
    SystemConfig cfg;
    cfg.design = DesignPoint::SCA;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.numCores = cores;
    cfg.numChannels = channels;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = txns;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.memctl.counterCacheBytes = 64 << 10;
    return cfg;
}

// ----------------------------------------------------------------------
// ChannelMap
// ----------------------------------------------------------------------

TEST(ChannelMap, SingleChannelMapsEverythingToZero)
{
    ChannelMap map(1, kCtrBase);
    for (Addr a : {Addr(0), Addr(256) << 20, kCtrBase, kCtrBase * 2,
                   Addr(0x123456740)})
        EXPECT_EQ(map.channelOf(a), 0u);
}

TEST(ChannelMap, DataInterleavesAtCounterBlockGranule)
{
    ChannelMap map(4, kCtrBase);
    Addr base = Addr(256) << 20;
    // All eight data lines covered by one counter line land together;
    // the next 512 B block lands on the next channel.
    for (unsigned blk = 0; blk < 16; ++blk) {
        unsigned expect = blk % 4;
        for (unsigned line = 0; line < countersPerLine; ++line) {
            Addr a = base + Addr(blk) * ChannelMap::dataGranule
                   + Addr(line) * lineBytes;
            EXPECT_EQ(map.channelOf(a), expect) << "blk " << blk
                                                << " line " << line;
        }
    }
}

TEST(ChannelMap, CounterLineColocatesWithItsDataLines)
{
    // The controller maps data line d to counter line
    //   ctrBase + (d / lineBytes / countersPerLine) * lineBytes;
    // the interleave must send both to the same channel, or a
    // counter-atomic pair would straddle two persist domains.
    ChannelMap map(8, kCtrBase);
    for (Addr d = Addr(256) << 20; d < (Addr(256) << 20) + (1 << 16);
         d += lineBytes) {
        Addr ctr = kCtrBase + (d / lineBytes / countersPerLine) * lineBytes;
        EXPECT_EQ(map.channelOf(d), map.channelOf(ctr))
            << "data " << std::hex << d;
    }
}

TEST(ChannelMap, TreeFlushAddrsAreDistinctAndOwnedByTheirChannel)
{
    ChannelMap map(4, kCtrBase);
    std::set<Addr> addrs;
    for (unsigned ch = 0; ch < 4; ++ch) {
        Addr a = map.treeFlushAddr(ch);
        EXPECT_GE(a, kCtrBase * 2);
        EXPECT_EQ(map.channelOf(a), ch);
        addrs.insert(a);
    }
    EXPECT_EQ(addrs.size(), 4u);
}

// ----------------------------------------------------------------------
// PersistSequencer + the global ADR cut
// ----------------------------------------------------------------------

TEST(PersistSequencer, MonotonicFromOne)
{
    PersistSequencer seq;
    EXPECT_EQ(seq.acquire(), 1u);
    EXPECT_EQ(seq.acquire(), 2u);
    EXPECT_EQ(seq.peek(), 3u);
    seq.reset();
    EXPECT_EQ(seq.acquire(), 1u);
}

TEST(DrainKeeps, NoDropKeepsEveryReadyEntry)
{
    std::vector<ChannelReady> ready(2);
    ready[0].dataSeqs = {1, 4};
    ready[1].dataSeqs = {2, 5};
    ready[0].ctrSeqs = {3};
    ready[1].ctrSeqs = {6};
    auto cuts = computeDrainKeeps(ready, 0);
    ASSERT_EQ(cuts.size(), 2u);
    EXPECT_EQ(cuts[0].dataKeep, 2u);
    EXPECT_EQ(cuts[1].dataKeep, 2u);
    EXPECT_EQ(cuts[0].ctrKeep, 1u);
    EXPECT_EQ(cuts[1].ctrKeep, 1u);
}

TEST(DrainKeeps, DropComesOffTheGlobalTailAcrossChannels)
{
    // Global drain order: all ready data by seq, then all ready
    // counters by seq. drop=3 must take the two counters (the global
    // tail) and then the *youngest data entry anywhere* — which lives
    // on channel 1, not on the channel that happens to be listed last.
    std::vector<ChannelReady> ready(2);
    ready[0].dataSeqs = {1, 4};
    ready[1].dataSeqs = {2, 5};
    ready[0].ctrSeqs = {3};
    ready[1].ctrSeqs = {6};
    auto cuts = computeDrainKeeps(ready, 3);
    EXPECT_EQ(cuts[0].dataKeep, 2u);
    EXPECT_EQ(cuts[1].dataKeep, 1u);
    EXPECT_EQ(cuts[0].ctrKeep, 0u);
    EXPECT_EQ(cuts[1].ctrKeep, 0u);
}

TEST(DrainKeeps, DropLargerThanReadySetKeepsNothing)
{
    std::vector<ChannelReady> ready(2);
    ready[0].dataSeqs = {1};
    ready[1].ctrSeqs = {2};
    auto cuts = computeDrainKeeps(ready, 99);
    EXPECT_EQ(cuts[0].dataKeep + cuts[0].ctrKeep, 0u);
    EXPECT_EQ(cuts[1].dataKeep + cuts[1].ctrKeep, 0u);
}

// ----------------------------------------------------------------------
// Cross-channel crash consistency
// ----------------------------------------------------------------------

TEST(MultiChannel, RunsMatchSingleChannelTxnCount)
{
    RunResult one = System(channelConfig(1)).run();
    RunResult four = System(channelConfig(4)).run();
    EXPECT_EQ(one.txnsIssued, four.txnsIssued);
    EXPECT_FALSE(four.crashed);
}

TEST(MultiChannel, PairBlockedWritersAreNotStarved)
{
    // Regression: at high core counts a channel's hot counter line can
    // have a new ready counter write on every drain completion. The
    // completion must let pair-blocked writers re-attempt before the
    // next issue (end-of-tick drain kick), or they starve behind the
    // line forever — a livelock that also grew the router's retry
    // backlog without bound. A memory-bound 8-core/8-channel run sat
    // in exactly that state for minutes before the fix; now it
    // finishes in well under the test timeout.
    SystemConfig cfg = channelConfig(8, 8, 30);
    cfg.wl.regionBytes = 2 << 20;
    cfg.wl.computePerTxn = 0; // memory-bound: maximum pair contention
    RunResult r = System(cfg).run();
    EXPECT_EQ(r.txnsIssued, 8u * 30u);
    EXPECT_FALSE(r.crashed);
}

TEST(MultiChannel, EveryCrashPointRecoversConsistently)
{
    // The directed cross-channel ordering check: a commit record
    // sharded onto one channel must never persist before its undo
    // entries on another. If the global cut ever let that happen, a
    // swept crash point would classify as inconsistent.
    for (unsigned channels : {2u, 4u}) {
        SweepOptions opt;
        opt.points = 14;
        SweepResult r = runSweep(channelConfig(channels), opt);
        EXPECT_EQ(r.inconsistentPoints(), 0u) << channels << " channels";
        EXPECT_EQ(r.silentPoints(), 0u) << channels << " channels";
    }
}

TEST(MultiChannel, FingerprintIdenticalAcrossJobsAndModes)
{
    // Per channel count the sweep fingerprint must be byte-identical
    // at any jobs value and in both Execute strategies. (Fingerprints
    // *differ across channel counts* — more banks and busses change
    // the timing — which is also pinned here so a silently degenerate
    // interleave can't sneak through.)
    std::vector<std::string> per_channel;
    for (unsigned channels : {1u, 2u, 4u}) {
        SystemConfig cfg = channelConfig(channels);
        SweepOptions opt;
        opt.points = 8;
        opt.faults = FaultSpec::allKinds(1);
        cfg.memctl.integrityMac = true;

        opt.jobs = 1;
        opt.mode = SweepMode::Replay;
        std::string ref = runSweep(cfg, opt).fingerprint();
        for (unsigned jobs : {1u, 4u}) {
            for (SweepMode mode : {SweepMode::Replay, SweepMode::Fork}) {
                opt.jobs = jobs;
                opt.mode = mode;
                EXPECT_EQ(runSweep(cfg, opt).fingerprint(), ref)
                    << channels << " channels, jobs " << jobs << ", "
                    << sweepModeName(mode);
            }
        }
        per_channel.push_back(ref);
    }
    EXPECT_NE(per_channel[0], per_channel[1]);
    EXPECT_NE(per_channel[1], per_channel[2]);
}

// ----------------------------------------------------------------------
// Core-scaling bugfixes
// ----------------------------------------------------------------------

TEST(CounterCacheCapacity, TotalIsExplicitNotScaledByCores)
{
    // 64 KB of counter cache covers one core's 32 KB counter working
    // set but not eight cores' 256 KB. The old config rule multiplied
    // the capacity by the core count behind the caller's back, which
    // made the 8-core system fit as comfortably as the 1-core one and
    // washed the contention out of every scaling figure.
    SystemConfig one = channelConfig(1, 1, 60);
    System sys1(one);
    sys1.run();
    double miss1 = sys1.counterCacheMissRate();

    SystemConfig eight = channelConfig(1, 8, 60);
    System sys8(eight);
    sys8.run();
    double miss8 = sys8.counterCacheMissRate();

    EXPECT_LT(miss1, 0.05);
    EXPECT_GT(miss8, miss1 + 0.10);
}

TEST(CounterCacheCapacity, SplitsEvenlyAcrossChannels)
{
    // A total that 4 channels cannot share evenly must be a loud
    // config error, not capacity silently rounded away.
    SystemConfig cfg = channelConfig(4);
    cfg.memctl.counterCacheBytes = (64 << 10) + 2;
    EXPECT_EXIT({ System sys(cfg); }, ::testing::ExitedWithCode(1),
                "does not split evenly");
}

TEST(ChannelShardedCache, IndexShiftRecoversStrandedSets)
{
    // A 4-channel shard only sees counter-line indices whose low two
    // bits equal its channel id. Without the index shift those
    // constant bits select the set, stranding 3/4 of the cache.
    constexpr std::uint64_t size = 4 << 10; // 16 sets x 4 ways
    constexpr unsigned assoc = 4;
    auto fill = [](CounterCache &cc) {
        // 32 lines with stride 4 lines — the channel-0 shard of a
        // 4-channel system. Half the nominal capacity; all of it must
        // stay resident when the index folds the channel bits out.
        for (unsigned i = 0; i < 32; ++i)
            cc.install(kCtrBase + Addr(i) * 4 * lineBytes, CounterLine{},
                       0);
        return cc.validCount();
    };
    CounterCache aliased(size, assoc, nullptr, "cc_alias.", 0);
    CounterCache sharded(size, assoc, nullptr, "cc_shard.", 2);
    EXPECT_EQ(fill(aliased), 16u); // 4 reachable sets x 4 ways
    EXPECT_EQ(fill(sharded), 32u);
}

TEST(RegionLayout, StaggeredRegionOverflowingCounterSpaceFailsLoudly)
{
    // Park the data region just below the counter store: the padded
    // stride plus bank stagger pushes core 1's region across the
    // boundary, which must be a loud layout error, not silent
    // corruption of the counter shard.
    SystemConfig cfg = channelConfig(1, 2, 5);
    cfg.dataRegionBase = kCtrBase - (1 << 20);
    cfg.wl.regionBytes = 512 << 10;
    EXPECT_EXIT({ System sys(cfg); }, ::testing::ExitedWithCode(1),
                "overflows into the counter region");
}

TEST(RegionLayout, StaggeredRegionsStayDisjointAtManyCores)
{
    // The stride is padded by the maximum stagger, so even a core
    // count that drives the stagger past a megabyte keeps every
    // region inside its own slot.
    SystemConfig cfg = channelConfig(1, 12, 2);
    cfg.wl.regionBytes = 1 << 20;
    System sys(cfg);
    for (unsigned i = 0; i + 1 < cfg.numCores; ++i)
        EXPECT_LE(sys.workload(i).regionEnd(),
                  sys.workload(i + 1).regionBase());
}

} // anonymous namespace
} // namespace cnvm
