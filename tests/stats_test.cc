/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace cnvm::stats
{
namespace
{

TEST(Scalar, StartsAtZero)
{
    Scalar s("s", "desc");
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Scalar, IncrementAndAdd)
{
    Scalar s("s", "desc");
    ++s;
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
}

TEST(Scalar, SetAndReset)
{
    Scalar s("s", "desc");
    s.set(17);
    EXPECT_EQ(s.value(), 17.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Formula, ComputesOnDemand)
{
    Scalar hits("h", ""), misses("m", "");
    Formula rate("rate", "miss rate", [&]() {
        double total = hits.value() + misses.value();
        return total == 0 ? 0.0 : misses.value() / total;
    });
    EXPECT_EQ(rate.value(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.25);
}

TEST(Histogram, CountsMeanMinMax)
{
    Histogram h("h", "lat", 10, 10);
    h.sample(5);
    h.sample(15);
    h.sample(25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 25u);
}

TEST(Histogram, BucketPlacement)
{
    Histogram h("h", "lat", 10, 4);
    h.sample(0);   // bucket 0
    h.sample(9);   // bucket 0
    h.sample(10);  // bucket 1
    h.sample(39);  // bucket 3
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(Histogram, OverflowBucketSaturates)
{
    Histogram h("h", "lat", 10, 4);
    h.sample(40);
    h.sample(1000000);
    EXPECT_EQ(h.bucketCount(4), 2u); // overflow bucket
    EXPECT_EQ(h.numBuckets(), 5u);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h("h", "lat", 10, 4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(Histogram, Reset)
{
    Histogram h("h", "lat", 10, 4);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Registry, FindAndLookup)
{
    StatRegistry reg;
    Scalar s("a.b.c", "desc");
    reg.registerStat(s);
    s += 7;
    ASSERT_NE(reg.find("a.b.c"), nullptr);
    EXPECT_EQ(reg.find("a.b.c")->value(), 7.0);
    EXPECT_EQ(reg.find("missing"), nullptr);
    EXPECT_EQ(reg.lookup("a.b.c"), 7.0);
}

TEST(Registry, PreservesRegistrationOrder)
{
    StatRegistry reg;
    Scalar a("a", ""), b("b", ""), c("c", "");
    reg.registerStat(b);
    reg.registerStat(a);
    reg.registerStat(c);
    ASSERT_EQ(reg.all().size(), 3u);
    EXPECT_EQ(reg.all()[0]->name(), "b");
    EXPECT_EQ(reg.all()[1]->name(), "a");
    EXPECT_EQ(reg.all()[2]->name(), "c");
}

TEST(Registry, ResetAll)
{
    StatRegistry reg;
    Scalar a("a", ""), b("b", "");
    reg.registerStat(a);
    reg.registerStat(b);
    a += 3;
    b += 4;
    reg.resetAll();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}

TEST(Registry, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    Scalar a("alpha", "the alpha stat");
    reg.registerStat(a);
    a += 42;
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("the alpha stat"), std::string::npos);
}

TEST(Registry, HistogramDumpHasMoments)
{
    StatRegistry reg;
    Histogram h("lat", "latency", 10, 4);
    reg.registerStat(h);
    h.sample(10);
    h.sample(20);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("lat::count"), std::string::npos);
    EXPECT_NE(out.find("lat::mean"), std::string::npos);
}

} // anonymous namespace
} // namespace cnvm::stats
