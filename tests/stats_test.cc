/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace cnvm::stats
{
namespace
{

TEST(Scalar, StartsAtZero)
{
    Scalar s("s", "desc");
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Scalar, IncrementAndAdd)
{
    Scalar s("s", "desc");
    ++s;
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
}

TEST(Scalar, SetAndReset)
{
    Scalar s("s", "desc");
    s.set(17);
    EXPECT_EQ(s.value(), 17.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Scalar, IntegerAccumulationIsExactPast2To53)
{
    // A double accumulator silently absorbs ++ once the count passes
    // 2^53 (the increment rounds away); the uint64/double split keeps
    // pure counters exact.
    constexpr std::uint64_t big = 1ull << 53;
    Scalar s("s", "desc");
    s.set(static_cast<double>(big));
    ++s;
    ++s;
    EXPECT_EQ(s.exactCount(), big + 2);
    s += 5;
    EXPECT_EQ(s.exactCount(), big + 7);
}

TEST(Scalar, LargeWholeAddsStayExact)
{
    // += of a large whole value must not round: 2^53 + 1 is not
    // representable in double, so it must arrive via the integer path
    // in two exact pieces.
    Scalar s("s", "desc");
    s += static_cast<double>(1ull << 53);
    s += 1;
    EXPECT_EQ(s.exactCount(), (1ull << 53) + 1);
}

TEST(Scalar, FractionalAddsKeepDoubleSemantics)
{
    Scalar s("s", "desc");
    s += 0.25;
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.25);
    EXPECT_EQ(s.exactCount(), 4u);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(s.exactCount(), 0u);
}

TEST(Scalar, DumpFormatUnchangedForSmallCounts)
{
    Scalar s("writes", "lines written");
    s += 42;
    std::ostringstream os;
    s.dump(os);
    EXPECT_EQ(os.str(), "writes 42 # lines written\n");
}

TEST(Formula, ComputesOnDemand)
{
    Scalar hits("h", ""), misses("m", "");
    Formula rate("rate", "miss rate", [&]() {
        double total = hits.value() + misses.value();
        return total == 0 ? 0.0 : misses.value() / total;
    });
    EXPECT_EQ(rate.value(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.25);
}

TEST(Histogram, CountsMeanMinMax)
{
    Histogram h("h", "lat", 10, 10);
    h.sample(5);
    h.sample(15);
    h.sample(25);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 25u);
}

TEST(Histogram, BucketPlacement)
{
    Histogram h("h", "lat", 10, 4);
    h.sample(0);   // bucket 0
    h.sample(9);   // bucket 0
    h.sample(10);  // bucket 1
    h.sample(39);  // bucket 3
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(Histogram, OverflowBucketSaturates)
{
    Histogram h("h", "lat", 10, 4);
    h.sample(40);
    h.sample(1000000);
    EXPECT_EQ(h.bucketCount(4), 2u); // overflow bucket
    EXPECT_EQ(h.numBuckets(), 5u);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h("h", "lat", 10, 4);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(Histogram, Reset)
{
    Histogram h("h", "lat", 10, 4);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Histogram, DumpEmitsPerBucketCounts)
{
    Histogram h("lat", "latency", 10, 4);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(1000); // overflow
    std::ostringstream os;
    h.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("lat::bucket_0 2"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::bucket_1 1"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::bucket_2 0"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::bucket_3 1"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::overflow 1"), std::string::npos) << out;
    // Pre-existing lines stay for baseline-diff compatibility.
    EXPECT_NE(out.find("lat::count 5"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::mean"), std::string::npos) << out;
}

TEST(Histogram, EmptyDumpReportsNoExtremes)
{
    // Regression: sample -> reset -> dump used to report "min 0" /
    // "max 0", indistinguishable from a histogram that really sampled
    // the value zero. An unsampled histogram dumps "-" instead.
    Histogram h("lat", "latency", 10, 4);
    h.sample(25);
    h.reset();
    std::ostringstream os;
    h.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("lat::count 0"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::min -"), std::string::npos) << out;
    EXPECT_NE(out.find("lat::max -"), std::string::npos) << out;
    EXPECT_EQ(out.find("lat::min 0"), std::string::npos) << out;
    EXPECT_EQ(out.find("lat::max 0"), std::string::npos) << out;

    // And a sampled histogram still reports real extremes.
    h.sample(25);
    std::ostringstream os2;
    h.dump(os2);
    EXPECT_NE(os2.str().find("lat::min 25"), std::string::npos);
    EXPECT_NE(os2.str().find("lat::max 25"), std::string::npos);
}

TEST(Registry, FindAndLookup)
{
    StatRegistry reg;
    Scalar s("a.b.c", "desc");
    reg.registerStat(s);
    s += 7;
    ASSERT_NE(reg.find("a.b.c"), nullptr);
    EXPECT_EQ(reg.find("a.b.c")->value(), 7.0);
    EXPECT_EQ(reg.find("missing"), nullptr);
    EXPECT_EQ(reg.lookup("a.b.c"), 7.0);
}

TEST(Registry, PreservesRegistrationOrder)
{
    StatRegistry reg;
    Scalar a("a", ""), b("b", ""), c("c", "");
    reg.registerStat(b);
    reg.registerStat(a);
    reg.registerStat(c);
    ASSERT_EQ(reg.all().size(), 3u);
    EXPECT_EQ(reg.all()[0]->name(), "b");
    EXPECT_EQ(reg.all()[1]->name(), "a");
    EXPECT_EQ(reg.all()[2]->name(), "c");
}

TEST(Registry, ResetAll)
{
    StatRegistry reg;
    Scalar a("a", ""), b("b", "");
    reg.registerStat(a);
    reg.registerStat(b);
    a += 3;
    b += 4;
    reg.resetAll();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}

TEST(Registry, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    Scalar a("alpha", "the alpha stat");
    reg.registerStat(a);
    a += 42;
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("the alpha stat"), std::string::npos);
}

TEST(Registry, HistogramDumpHasMoments)
{
    StatRegistry reg;
    Histogram h("lat", "latency", 10, 4);
    reg.registerStat(h);
    h.sample(10);
    h.sample(20);
    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("lat::count"), std::string::npos);
    EXPECT_NE(out.find("lat::mean"), std::string::npos);
}

} // anonymous namespace
} // namespace cnvm::stats
