/**
 * @file
 * Tests for the crash-chain soak harness: the resume-after-recovery
 * lifecycle (System resume construction, controller re-seed, degraded
 * recovery), the SoakOracle's cumulative invariants, quarantine
 * persistence across cycles, chain determinism across worker counts,
 * and the headline multi-design soak gate.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "common/hash.hh"
#include "core/soak.hh"

namespace cnvm
{
namespace
{

SystemConfig
smallConfig(DesignPoint design)
{
    SystemConfig cfg;
    cfg.design = design;
    cfg.workload = WorkloadKind::ArraySwap;
    cfg.wl.regionBytes = 256 << 10;
    cfg.wl.txnTarget = 25;
    cfg.wl.computePerTxn = 100;
    cfg.wl.recordDigests = true;
    cfg.wl.setupFill = 0.3;
    cfg.memctl.counterCacheBytes = 16 << 10;
    // A chain needs every clean shutdown to recover: Unsafe defers
    // counter write-backs past the ADR drain, so without the MAC's
    // window repair even an uninterrupted run leaves the log header
    // torn on the media. Arm the MAC uniformly so all four designs
    // face the same configuration.
    cfg.memctl.integrityMac = true;
    return cfg;
}

SoakOptions
smallSoak(unsigned cycles)
{
    SoakOptions opt;
    opt.cycles = cycles;
    opt.txnsPerCycle = 8;
    opt.seed = 7;
    return opt;
}

/** Fold per-report recovered digests the way SoakChainResult does. */
std::uint64_t
foldDigests(const std::vector<RecoveryReport> &reports)
{
    std::uint64_t d = 0;
    for (std::size_t i = 0; i < reports.size(); ++i)
        d = fnv1aU64(reports[i].recoveredDigest,
                     i == 0 ? fnvOffsetBasis : d);
    return d;
}

// --- clean-chain identity control -----------------------------------------

class CleanChainIdentity : public ::testing::TestWithParam<DesignPoint>
{};

/**
 * The zero-fault control: a chain of crash→recover→resume cycles must
 * end at exactly the state an uninterrupted run of the same final
 * transaction target reaches — same committed counts, same recovered
 * logical-content digest, nothing quarantined, no resets.
 */
TEST_P(CleanChainIdentity, MatchesUninterruptedRun)
{
    SystemConfig cfg = smallConfig(GetParam());
    SoakChainResult chain = runSoakChain(cfg, smallSoak(4));
    ASSERT_TRUE(chain.ok) << chain.failure;
    EXPECT_EQ(chain.totalResets(), 0u);
    EXPECT_EQ(chain.silentCycles(), 0u);
    EXPECT_EQ(chain.finalQuarantined, 0u);
    ASSERT_EQ(chain.finalCommitted.size(), 1u);
    EXPECT_EQ(chain.finalCommitted[0], chain.finalTxnTarget);

    // Control: one uninterrupted run to the same target.
    cfg.wl.txnTarget = chain.finalTxnTarget;
    System control(cfg);
    control.run();
    control.crashChannels();
    std::vector<RecoveryReport> reports = control.recoverAll();
    ASSERT_EQ(reports.size(), 1u);
    ASSERT_TRUE(reports[0].consistent) << reports[0].detail;
    EXPECT_EQ(reports[0].committedTxns, chain.finalTxnTarget);
    EXPECT_EQ(foldDigests(reports), chain.finalDigest);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, CleanChainIdentity,
                         ::testing::Values(DesignPoint::ColocatedCC,
                                           DesignPoint::FCA,
                                           DesignPoint::SCA,
                                           DesignPoint::Unsafe));

// --- resume construction --------------------------------------------------

/**
 * The tentpole mechanism in isolation: crash mid-run, recover in
 * degraded write-back mode, resume, and finish the workload. The
 * resumed system must pick up at the committed count and run to a
 * fully consistent completion.
 */
TEST(Resume, ContinuesFromCommittedPoint)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.wl.txnTarget = 20;
    auto sys = std::make_unique<System>(cfg);
    RunResult probe = sys->run();

    sys = std::make_unique<System>(cfg);
    RunResult r = sys->runWithCrashAt(probe.endTick / 2);
    ASSERT_TRUE(r.crashed);

    PersistImage img = sys->nvm().persistedState();
    RecoveryOptions ropt;
    ropt.degraded = true;
    ropt.commitTo = &img;
    RecoveryEngine eng(img, sys->controller());
    RecoveryReport rep = eng.recover(sys->workload(0), nullptr, ropt);
    ASSERT_TRUE(rep.consistent) << rep.detail;
    ASSERT_LT(rep.committedTxns, 20u);

    ResumeState state;
    img.clearFaultGroundTruth();
    state.image = std::move(img);
    state.committedTxns = {rep.committedTxns};
    state.quarantined = {rep.quarantinedLines};

    System resumed(cfg, state);
    resumed.run();
    resumed.crashChannels();
    std::vector<RecoveryReport> fin = resumed.recoverAll();
    ASSERT_TRUE(fin[0].consistent) << fin[0].detail;
    EXPECT_EQ(fin[0].committedTxns, 20u);

    // Identity against the uninterrupted run's recovered content.
    System control(cfg);
    control.run();
    control.crashChannels();
    std::vector<RecoveryReport> ctrl = control.recoverAll();
    ASSERT_TRUE(ctrl[0].consistent);
    EXPECT_EQ(fin[0].recoveredDigest, ctrl[0].recoveredDigest);
}

TEST(Resume, WorksAcrossChannelAndSimJobsConfigs)
{
    SystemConfig cfg = smallConfig(DesignPoint::ColocatedCC);
    cfg.numChannels = 2;
    cfg.simJobs = 2;
    SoakChainResult chain = runSoakChain(cfg, smallSoak(3));
    ASSERT_TRUE(chain.ok) << chain.failure;
    EXPECT_EQ(chain.totalResets(), 0u);
}

TEST(Resume, MultiCoreChain)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.numCores = 2;
    SoakChainResult chain = runSoakChain(cfg, smallSoak(3));
    ASSERT_TRUE(chain.ok) << chain.failure;
    ASSERT_EQ(chain.finalCommitted.size(), 2u);
    EXPECT_EQ(chain.finalCommitted[0], chain.finalTxnTarget);
    EXPECT_EQ(chain.finalCommitted[1], chain.finalTxnTarget);
}

// --- quarantine persistence -----------------------------------------------

/** First persisted log-backup line of core 0 — damage to it survives
 *  recovery as a quarantined line without touching committed state. */
Addr
persistedLogBackupLine(System &sys)
{
    for (Addr a : sys.nvm().persistedState().dataLineAddrs()) {
        if (sys.workload(0).classifyAddr(a) == RegionPart::LogBackup)
            return a;
    }
    return 0;
}

/**
 * A line quarantined in cycle k reads as zeros and stays counted in
 * every later cycle until something legitimately rewrites its stored
 * triple; the SoakOracle accepts the legitimate lift and rejects a
 * silent one.
 */
TEST(QuarantinePersistence, SurvivesCyclesUntilRewritten)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;
    cfg.wl.txnTarget = 6;

    auto sys = std::make_unique<System>(cfg);
    sys->run();
    sys->crashChannels(); // clean shutdown: log invalid
    Addr victim = persistedLogBackupLine(*sys);
    ASSERT_NE(victim, 0u);
    LineData garbage{};
    garbage.fill(0xA5);
    sys->nvm().persistedState().corruptDataLine(victim, garbage);

    SoakOracle oracle(1);
    std::vector<std::uint8_t> fresh;

    // Cycle 0: the corruption is detected and quarantined; committed
    // state is untouched (the log was invalid), so recovery completes
    // degraded.
    PersistImage img = sys->nvm().persistedState();
    RecoveryOptions ropt;
    ropt.degraded = true;
    ropt.commitTo = &img;
    CrashOracle ocl(img, sys->controller());
    std::vector<OracleReport> reports{
        ocl.examine(sys->workload(0), nullptr, ropt)};
    ASSERT_TRUE(reports[0].recovery.consistent)
        << reports[0].recovery.detail;
    EXPECT_TRUE(reports[0].recovery.degradedConsistent);
    // A handled (quarantined) corruption under a consistent verdict
    // classifies Consistent — the detection shows in the counters.
    EXPECT_EQ(reports[0].cls, CrashClass::Consistent);
    EXPECT_GE(reports[0].recovery.detectedCorruptions, 1u);
    ASSERT_EQ(reports[0].recovery.quarantinedLines.size(), 1u);
    EXPECT_EQ(reports[0].recovery.quarantinedLines[0], victim);
    EXPECT_TRUE(oracle.observe(reports, img, sys->controller(), fresh)
                    .empty());
    EXPECT_EQ(oracle.quarantinedCount(), 1u);

    ResumeState state;
    img.clearFaultGroundTruth();
    state.image = std::move(img);
    state.committedTxns = {reports[0].recovery.committedTxns};
    state.quarantined = {reports[0].recovery.quarantinedLines};

    // Cycles 1..2: resume, crash immediately (no work, no rewrite) —
    // the line must read as zeros and stay quarantined every time.
    for (unsigned cycle = 1; cycle <= 2; ++cycle) {
        cfg.wl.txnTarget = 6 + cycle * 4;
        auto resumed = std::make_unique<System>(cfg, state);
        LineData live = resumed->nvm().livePlainRead(victim);
        for (std::uint8_t b : live)
            ASSERT_EQ(b, 0u) << "cycle " << cycle;
        resumed->crashChannels(); // instant power failure, nothing ran

        PersistImage next = resumed->nvm().persistedState();
        RecoveryOptions nropt;
        nropt.degraded = true;
        nropt.commitTo = &next;
        CrashOracle nocl(next, resumed->controller());
        std::vector<OracleReport> nrep{
            nocl.examine(resumed->workload(0), nullptr, nropt)};
        ASSERT_TRUE(nrep[0].recovery.consistent)
            << "cycle " << cycle << ": " << nrep[0].recovery.detail;
        ASSERT_EQ(nrep[0].recovery.quarantinedLines.size(), 1u)
            << "cycle " << cycle;
        EXPECT_EQ(nrep[0].recovery.quarantinedLines[0], victim);
        EXPECT_TRUE(oracle
                        .observe(nrep, next, resumed->controller(),
                                 fresh)
                        .empty());

        next.clearFaultGroundTruth();
        state = ResumeState{};
        state.image = std::move(next);
        state.committedTxns = {nrep[0].recovery.committedTxns};
        state.quarantined = {nrep[0].recovery.quarantinedLines};
        sys = std::move(resumed);
    }

    // Cycle 3: actually run — the first transaction rewrites the log
    // backup area, draining a fresh triple over the tombstone. The
    // quarantine lifts and the oracle accepts it as legitimate.
    cfg.wl.txnTarget = 20;
    System resumed(cfg, state);
    resumed.run();
    resumed.crashChannels();
    PersistImage last = resumed.nvm().persistedState();
    RecoveryOptions lropt;
    lropt.degraded = true;
    lropt.commitTo = &last;
    CrashOracle locl(last, resumed.controller());
    std::vector<OracleReport> lrep{
        locl.examine(resumed.workload(0), nullptr, lropt)};
    ASSERT_TRUE(lrep[0].recovery.consistent) << lrep[0].recovery.detail;
    EXPECT_EQ(lrep[0].recovery.committedTxns, 20u);
    EXPECT_TRUE(lrep[0].recovery.quarantinedLines.empty());
    EXPECT_TRUE(
        oracle.observe(lrep, last, resumed.controller(), fresh).empty());
    EXPECT_EQ(oracle.quarantinedCount(), 0u);
}

/** The oracle flags a quarantined line that vanishes from the reports
 *  while its stored triple is unchanged — the silent shrink. */
TEST(QuarantinePersistence, OracleRejectsSilentShrink)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;
    cfg.wl.txnTarget = 6;

    System sys(cfg);
    sys.run();
    sys.crashChannels();
    Addr victim = persistedLogBackupLine(sys);
    ASSERT_NE(victim, 0u);
    LineData garbage{};
    garbage.fill(0x3C);
    sys.nvm().persistedState().corruptDataLine(victim, garbage);

    PersistImage img = sys.nvm().persistedState();
    RecoveryOptions ropt;
    ropt.degraded = true;
    ropt.commitTo = &img;
    CrashOracle ocl(img, sys.controller());
    std::vector<OracleReport> reports{
        ocl.examine(sys.workload(0), nullptr, ropt)};
    ASSERT_EQ(reports[0].recovery.quarantinedLines.size(), 1u);

    SoakOracle oracle(1);
    std::vector<std::uint8_t> fresh;
    ASSERT_TRUE(
        oracle.observe(reports, img, sys.controller(), fresh).empty());

    // Forge the next cycle's reports: same image bytes, but the
    // quarantine entry dropped — as if recovery trusted the line.
    reports[0].recovery.quarantinedLines.clear();
    std::string viol = oracle.observe(reports, img, sys.controller(),
                                      fresh);
    EXPECT_NE(viol.find("left quarantine"), std::string::npos) << viol;
}

// --- fault-dosed chains ---------------------------------------------------

TEST(SoakChain, FaultDosedChainStaysLoud)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;
    cfg.memctl.integrityTree = true;
    SoakOptions opt = smallSoak(8);
    opt.faults = FaultSpec::allKindsWithReplays(11);
    opt.faultPeriod = 2;
    SoakChainResult chain = runSoakChain(cfg, opt);
    ASSERT_TRUE(chain.ok) << chain.failure;
    EXPECT_EQ(chain.silentCycles(), 0u);
    EXPECT_GT(chain.dosedCycles(), 0u);

    // The dose has to have landed somewhere: detections, repairs, or
    // residual quarantine across the chain.
    std::uint64_t seen = 0;
    for (const SoakCycle &c : chain.cycles)
        seen += c.detectedCorruptions + c.replaysDetected
            + c.repairedLines + c.quarantined;
    EXPECT_GT(seen, 0u);
}

TEST(SoakChain, RecoveryCrashProbeConverges)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;
    SoakOptions opt = smallSoak(4);
    opt.recoveryCrashes = 2;
    SoakChainResult chain = runSoakChain(cfg, opt);
    ASSERT_TRUE(chain.ok) << chain.failure;
    unsigned interrupts = 0;
    for (const SoakCycle &c : chain.cycles)
        interrupts += c.recoveryInterrupts;
    EXPECT_GT(interrupts, 0u);
}

// --- determinism ----------------------------------------------------------

TEST(SoakDeterminism, FingerprintIdenticalAcrossJobs)
{
    SystemConfig cfg = smallConfig(DesignPoint::ColocatedCC);
    cfg.memctl.integrityMac = true;
    SoakOptions opt = smallSoak(3);
    opt.faults = FaultSpec::allKinds(5);
    opt.faultPeriod = 2;
    opt.chains = 3;

    opt.jobs = 1;
    SoakResult serial = runSoak(cfg, opt);
    opt.jobs = 4;
    SoakResult parallel = runSoak(cfg, opt);

    ASSERT_TRUE(serial.allOk()) << serial.firstFailure();
    EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
}

TEST(SoakDeterminism, FingerprintIdenticalAcrossRecoveryJobs)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    cfg.memctl.integrityMac = true;
    SoakOptions opt = smallSoak(3);
    opt.faults = FaultSpec::allKinds(9);
    opt.faultPeriod = 2;

    opt.recoveryJobs = 1;
    SoakChainResult serial = runSoakChain(cfg, opt);
    opt.recoveryJobs = 4;
    SoakChainResult parallel = runSoakChain(cfg, opt);

    ASSERT_TRUE(serial.ok) << serial.failure;
    EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
}

// --- stat semantics -------------------------------------------------------

/** Each cycle runs on a freshly built System, so per-cycle stats are
 *  reset by construction; the chain carries snapshots whose sum is
 *  the accumulate view. */
TEST(SoakStats, PerCycleSnapshotsArePopulated)
{
    SystemConfig cfg = smallConfig(DesignPoint::SCA);
    SoakChainResult chain = runSoakChain(cfg, smallSoak(3));
    ASSERT_TRUE(chain.ok) << chain.failure;
    ASSERT_EQ(chain.cycles.size(), 4u); // 3 cycles + final examination
    std::uint64_t total_txns = 0;
    for (const SoakCycle &c : chain.cycles) {
        EXPECT_GT(c.stats.nvmBytesWritten, 0u) << "cycle " << c.cycle;
        EXPECT_GT(c.stats.dataInserts, 0u) << "cycle " << c.cycle;
        total_txns += c.stats.txnsIssued;
    }
    EXPECT_GE(total_txns, chain.finalTxnTarget);
}

// --- headline gate --------------------------------------------------------

/**
 * The headline soak gate: across the four design points, >= 100
 * crash→recover→resume cycles in total with media and replay faults
 * dosed and the integrity tree armed — every cycle classifies loud,
 * every cumulative invariant holds, and every final image passes the
 * full examination.
 */
TEST(SoakHeadline, FourDesignsHundredCyclesZeroSilent)
{
    const DesignPoint designs[] = {
        DesignPoint::ColocatedCC,
        DesignPoint::FCA,
        DesignPoint::SCA,
        DesignPoint::Unsafe,
    };
    unsigned total_cycles = 0;
    for (DesignPoint d : designs) {
        SystemConfig cfg = smallConfig(d);
        cfg.memctl.integrityMac = true;
        cfg.memctl.integrityTree = true;
        SoakOptions opt = smallSoak(26);
        opt.faults = FaultSpec::allKindsWithReplays(3);
        opt.faultPeriod = 2;
        SoakChainResult chain = runSoakChain(cfg, opt);
        ASSERT_TRUE(chain.ok)
            << designName(d) << ": " << chain.failure;
        EXPECT_EQ(chain.silentCycles(), 0u) << designName(d);
        EXPECT_GT(chain.dosedCycles(), 0u) << designName(d);
        total_cycles += static_cast<unsigned>(chain.cycles.size());
    }
    EXPECT_GE(total_cycles, 100u);
}

} // namespace
} // namespace cnvm
