/**
 * @file
 * Unit tests for the in-order core: op execution, fence semantics
 * (sfence waits for clwb/counter_cache_writeback acceptance), halting,
 * and completion tracking. Uses a scriptable memory path via the same
 * fake backend approach as the CoreMemPath tests.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cpu/core.hh"
#include "sim/one_shot.hh"

namespace cnvm
{
namespace
{

/** Fixed-latency backend whose write acceptance can be deferred. */
class FakeBackend : public MemBackend
{
  public:
    explicit FakeBackend(EventQueue &eq) : eq(eq) {}

    void
    issueRead(Addr, unsigned, ReadCallback done) override
    {
        ++reads;
        scheduleAfter(eq, nsToTicks(70), std::move(done));
    }

    bool
    tryWrite(const WriteReq &req) override
    {
        ++writes;
        if (req.accepted) {
            if (deferAcceptance)
                pendingAccepts.push_back(req.accepted);
            else
                scheduleAfter(eq, nsToTicks(5), req.accepted);
        }
        return true;
    }

    bool
    tryCtrWriteback(Addr, std::function<void()> accepted) override
    {
        ++ctrwbs;
        if (accepted) {
            if (deferAcceptance)
                pendingAccepts.push_back(accepted);
            else
                scheduleAfter(eq, nsToTicks(5), accepted);
        }
        return true;
    }

    void
    releaseAccepts()
    {
        for (auto &cb : pendingAccepts)
            scheduleAfter(eq, 1, cb);
        pendingAccepts.clear();
    }

    void registerRetry(std::function<void()>) override {}
    LineData functionalRead(Addr) const override { return LineData{}; }
    void functionalStore(Addr, unsigned, const std::uint8_t *) override {}

    EventQueue &eq;
    bool deferAcceptance = false;
    unsigned reads = 0;
    unsigned writes = 0;
    unsigned ctrwbs = 0;
    std::vector<std::function<void()>> pendingAccepts;
};

/** Op source playing a fixed script once. */
class ScriptSource : public OpSource
{
  public:
    explicit ScriptSource(std::vector<Op> script)
        : script(std::move(script))
    {}

    bool
    next(std::vector<Op> &out) override
    {
        if (delivered || script.empty())
            return false;
        delivered = true;
        out = script;
        return true;
    }

  private:
    std::vector<Op> script;
    bool delivered = false;
};

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : backend(eq) {}

    /** Builds a core over the script and runs it to completion. */
    Tick
    runScript(std::vector<Op> script)
    {
        CachePathConfig cache;
        cache.l1Bytes = 1024;
        cache.l2Bytes = 4096;
        cache.l1Assoc = 2;
        cache.l2Assoc = 4;
        path = std::make_unique<CoreMemPath>(eq, ClockDomain(250),
                                             backend, cache, 0, nullptr);
        source = std::make_unique<ScriptSource>(std::move(script));
        core = std::make_unique<Core>(eq, ClockDomain(250), *path,
                                      *source, 0, nullptr);
        core->start();
        eq.run();
        return core->finished() ? core->finishedAt() : maxTick;
    }

    static Op
    store64(Addr addr, std::uint64_t v)
    {
        return Op::store(addr, &v, sizeof(v));
    }

    EventQueue eq;
    FakeBackend backend;
    std::unique_ptr<CoreMemPath> path;
    std::unique_ptr<ScriptSource> source;
    std::unique_ptr<Core> core;
};

TEST_F(CoreTest, EmptySourceFinishesImmediately)
{
    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    ScriptSource empty({});
    Core c(eq, ClockDomain(250), *path, empty, 0, nullptr);
    bool notified = false;
    c.setOnFinished([&]() { notified = true; });
    c.start();
    eq.run();
    EXPECT_TRUE(c.finished());
    EXPECT_TRUE(notified);
}

TEST_F(CoreTest, ComputeAdvancesByCycles)
{
    Tick end = runScript({Op::compute(1000)});
    // 1000 cycles at 250 ps, plus the scheduling cycle granularity.
    EXPECT_GE(end, 1000u * 250);
    EXPECT_LT(end, 1100u * 250);
}

TEST_F(CoreTest, LoadBlocksUntilData)
{
    Tick end = runScript({Op::load(0x10000)});
    EXPECT_GE(end, nsToTicks(70)); // the backend's read latency
    EXPECT_EQ(backend.reads, 1u);
}

TEST_F(CoreTest, SequentialLoadsSerializeOnMisses)
{
    Tick one = runScript({Op::load(0x10000)});
    FakeBackend backend2(eq);
    // Fresh fixture state: reuse runScript with two distinct lines.
    Tick two = runScript({Op::load(0x20000), Op::load(0x30000)});
    EXPECT_GT(two, one + nsToTicks(60)); // no overlap in-order
}

TEST_F(CoreTest, FenceWithoutPersistsIsCheap)
{
    Tick end = runScript({Op::fence(), Op::fence()});
    EXPECT_LT(end, nsToTicks(10));
}

TEST_F(CoreTest, FenceWaitsForClwbAcceptance)
{
    backend.deferAcceptance = true;
    std::vector<Op> script = {
        store64(0x10000, 7),
        Op::clwb(0x10000),
        Op::fence(),
    };

    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    source = std::make_unique<ScriptSource>(script);
    core = std::make_unique<Core>(eq, ClockDomain(250), *path, *source,
                                  0, nullptr);
    core->start();
    eq.run();
    // The fence blocks on the unaccepted writeback: not finished.
    EXPECT_FALSE(core->finished());

    backend.releaseAccepts();
    eq.run();
    EXPECT_TRUE(core->finished());
}

TEST_F(CoreTest, FenceWaitsForCtrwbAcceptance)
{
    backend.deferAcceptance = true;
    std::vector<Op> script = {Op::ctrwb(0x10000), Op::fence()};

    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    source = std::make_unique<ScriptSource>(script);
    core = std::make_unique<Core>(eq, ClockDomain(250), *path, *source,
                                  0, nullptr);
    core->start();
    eq.run();
    EXPECT_FALSE(core->finished());
    backend.releaseAccepts();
    eq.run();
    EXPECT_TRUE(core->finished());
}

TEST_F(CoreTest, ClwbDoesNotBlockExecution)
{
    backend.deferAcceptance = true;
    // After the clwb, compute continues even though acceptance is
    // stuck; only the terminal bookkeeping waits.
    std::vector<Op> script = {
        store64(0x10000, 7),
        Op::clwb(0x10000),
        Op::compute(100),
    };
    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    source = std::make_unique<ScriptSource>(script);
    core = std::make_unique<Core>(eq, ClockDomain(250), *path, *source,
                                  0, nullptr);
    core->start();
    eq.run();
    // Compute retired (stats prove it) even though the core has an
    // outstanding persist.
    EXPECT_EQ(core->computeOps.value(), 1.0);
    EXPECT_FALSE(core->finished());
    backend.releaseAccepts();
    eq.run();
    EXPECT_TRUE(core->finished());
}

TEST_F(CoreTest, HaltStopsFurtherOps)
{
    std::vector<Op> script;
    for (int i = 0; i < 100; ++i)
        script.push_back(Op::load(0x10000 + i * 0x1000));
    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    source = std::make_unique<ScriptSource>(script);
    core = std::make_unique<Core>(eq, ClockDomain(250), *path, *source,
                                  0, nullptr);
    core->start();
    scheduleAt(eq, nsToTicks(200), [&]() { core->halt(); });
    eq.run();
    EXPECT_FALSE(core->finished());
    EXPECT_LT(backend.reads, 100u);
}

TEST_F(CoreTest, StatsCountOps)
{
    stats::StatRegistry reg;
    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    std::vector<Op> script = {
        Op::load(0x10000), store64(0x10000, 1), Op::clwb(0x10000),
        Op::ctrwb(0x10000), Op::fence(), Op::compute(10),
    };
    source = std::make_unique<ScriptSource>(script);
    Core c(eq, ClockDomain(250), *path, *source, 5, &reg);
    c.start();
    eq.run();
    EXPECT_EQ(reg.lookup("core5.loads"), 1.0);
    EXPECT_EQ(reg.lookup("core5.stores"), 1.0);
    EXPECT_EQ(reg.lookup("core5.clwbs"), 1.0);
    EXPECT_EQ(reg.lookup("core5.ctrwbs"), 1.0);
    EXPECT_EQ(reg.lookup("core5.fences"), 1.0);
    EXPECT_EQ(reg.lookup("core5.compute_ops"), 1.0);
}

TEST_F(CoreTest, FenceStallTicksAccumulate)
{
    stats::StatRegistry reg;
    backend.deferAcceptance = true;
    CachePathConfig cache;
    cache.l1Bytes = 1024;
    cache.l2Bytes = 4096;
    cache.l1Assoc = 2;
    cache.l2Assoc = 4;
    path = std::make_unique<CoreMemPath>(eq, ClockDomain(250), backend,
                                         cache, 0, nullptr);
    std::vector<Op> script = {
        store64(0x10000, 1), Op::clwb(0x10000), Op::fence(),
    };
    source = std::make_unique<ScriptSource>(script);
    Core c(eq, ClockDomain(250), *path, *source, 6, &reg);
    c.start();
    eq.run();
    scheduleAt(eq, nsToTicks(500), [&]() { backend.releaseAccepts(); });
    eq.run();
    EXPECT_TRUE(c.finished());
    EXPECT_GT(reg.lookup("core6.fence_stall_ticks"), nsToTicks(300));
}

} // anonymous namespace
} // namespace cnvm
